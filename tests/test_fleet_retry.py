"""Fleet driver fault tolerance: worker death, stalls, retry budgets.

Worker chaos is injected through the ``REPRO_FLEET_CHAOS`` env var
(read in the *child* process — monkeypatching cannot cross the process
boundary), with a marker directory counting injections so the attempt
after the budgeted failures runs clean.
"""

import pytest

from repro.fleet import FleetSpec, HostSpec, ShardRetryExhausted, run_fleet
from repro.fleet.runner import _CHAOS_ENV

pytestmark = pytest.mark.slow


def small_spec(n_hosts=3, seed=77):
    return FleetSpec(
        hosts=tuple(
            HostSpec(host_id=i, backend="pageforge", app="moses",
                     n_vms=1, pages_per_vm=20)
            for i in range(n_hosts)
        ),
        seed=seed, duration_s=0.02, warmup_s=0.02,
    )


def chaos(monkeypatch, tmp_path, kind, host_id, times, stall_s=0.0):
    markers = tmp_path / "chaos-markers"
    markers.mkdir(exist_ok=True)
    monkeypatch.setenv(
        _CHAOS_ENV, f"{kind}:{host_id}:{times}:{stall_s}:{markers}"
    )


class TestWorkerDeath:
    def test_retry_recovers_and_fingerprint_unchanged(
            self, monkeypatch, tmp_path):
        spec = small_spec()
        clean = run_fleet(spec, workers=1)
        assert clean.shard_retries == {}

        chaos(monkeypatch, tmp_path, "die", host_id=1, times=1)
        retried = run_fleet(spec, workers=2, shard_retries=3)

        # The re-run is exactly equivalent to a clean run...
        assert retried.fingerprint == clean.fingerprint
        # ...and the retry ledger is outside the fingerprint but on
        # the result.  The batch round cannot attribute a dead worker,
        # so collateral shards may be charged one attempt too; the
        # actually-killed host must be among them.
        assert retried.shard_retries.get(1, 0) >= 1
        assert retried.total_shard_retries >= 1
        assert "shard_retries" not in retried.to_dict()

    def test_budget_exhaustion_names_the_guilty_host(
            self, monkeypatch, tmp_path):
        spec = small_spec()
        # The shard dies more times than the budget allows.
        chaos(monkeypatch, tmp_path, "die", host_id=1, times=10)
        with pytest.raises(ShardRetryExhausted) as exc_info:
            run_fleet(spec, workers=2, shard_retries=2)
        # Isolation retries pin the blame exactly: host 1, not a
        # collateral victim of the broken shared pool.
        assert exc_info.value.host_id == 1
        assert exc_info.value.attempts == 3  # batch + 2 isolation
        assert "host 1" in str(exc_info.value)


class TestStalledWorker:
    def test_shard_timeout_retries_stalled_shard(
            self, monkeypatch, tmp_path):
        spec = small_spec()
        clean = run_fleet(spec, workers=1)
        # One 60s stall against a 10s per-shard timeout (a clean shard
        # including child startup runs in a couple of seconds): the
        # first attempt is abandoned, the second (chaos spent) runs
        # clean.
        chaos(monkeypatch, tmp_path, "stall", host_id=2, times=1,
              stall_s=60.0)
        retried = run_fleet(
            spec, workers=2, shard_retries=3, shard_timeout=10.0,
        )
        assert retried.fingerprint == clean.fingerprint
        assert retried.shard_retries.get(2, 0) >= 1


class TestRetryPlumbing:
    def test_inline_run_ignores_retry_machinery(
            self, monkeypatch, tmp_path):
        # workers=1 runs shards in-process: worker death is
        # impossible, chaos targets the pool path only.
        spec = small_spec(n_hosts=2)
        result = run_fleet(spec, workers=1, shard_retries=0)
        assert result.shard_retries == {}

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            run_fleet(small_spec(n_hosts=1), workers=2,
                      shard_retries=-1)

    def test_zero_budget_fails_on_first_death(
            self, monkeypatch, tmp_path):
        spec = small_spec(n_hosts=2)
        chaos(monkeypatch, tmp_path, "die", host_id=0, times=1)
        with pytest.raises(ShardRetryExhausted):
            run_fleet(spec, workers=2, shard_retries=0)


class TestExportCarriesRetries:
    def test_fleet_csv_rows_report_retries(
            self, monkeypatch, tmp_path):
        from repro.analysis.export import fleet_to_rows

        spec = small_spec()
        chaos(monkeypatch, tmp_path, "die", host_id=1, times=1)
        result = run_fleet(spec, workers=2, shard_retries=3)
        rows = fleet_to_rows(result)
        host_rows = [r for r in rows if r["row"] == "host"]
        total = rows[-1]
        assert total["row"] == "fleet"
        assert total["shard_retries"] == result.total_shard_retries
        by_host = {r["host_id"]: r["shard_retries"] for r in host_rows}
        assert by_host[1] == result.shard_retries.get(1, 0)
        # Retries are provenance, never identity: the fingerprint in
        # the export is the clean run's.
        assert total["fingerprint"] == result.fingerprint
