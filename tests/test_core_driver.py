"""Focused tests for the PageForge OS driver and strategy internals."""

import numpy as np
import pytest

from repro.common.config import KSMConfig, PageForgeConfig
from repro.common.units import PAGE_BYTES
from repro.core import PageForgeMergeDriver, ecc_hash_key
from repro.ksm import ContentRBTree, RBNode
from repro.ksm.daemon import StaleNodeError
from repro.mem import MemoryController, PhysicalMemory
from repro.virt import Hypervisor


@pytest.fixture
def driver(memory):
    hypervisor = Hypervisor(physical_memory=memory)
    controller = MemoryController(0, memory, verify_ecc=False)
    return PageForgeMergeDriver(hypervisor, controller)


def stable_tree_of(memory, rng, n):
    """A stable tree with daemon-style key functions (stale-aware)."""
    tree = ContentRBTree("stable")
    frames = []

    def key_fn_for(frame):
        def key():
            if not memory.is_allocated(frame.ppn):
                raise StaleNodeError(f"PPN {frame.ppn} freed")
            return frame.data

        return key

    for _ in range(n):
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        frames.append(frame)
        tree.insert(RBNode(key_fn_for(frame),
                           payload=("stable", frame.ppn)))
    return tree, frames


class TestHashKeyContinuity:
    def test_key_persists_across_refills(self, driver, memory, rng):
        """A candidate's minikeys accumulate across Scan-Table refills;
        the final key equals the software reference."""
        tree, _frames = stable_tree_of(memory, rng, 100)  # > 31: refills
        candidate = memory.allocate()
        candidate.fill(rng.bytes_array(PAGE_BYTES))
        outcome = driver.strategy.walk(tree, candidate)
        assert outcome.match is None
        assert driver.strategy.table_refills >= 2
        key = driver.strategy.checksum(candidate)
        assert key == ecc_hash_key(candidate.data)

    def test_key_reset_between_candidates(self, driver, memory, rng):
        tree, _frames = stable_tree_of(memory, rng, 10)
        for _ in range(2):
            candidate = memory.allocate()
            candidate.fill(rng.bytes_array(PAGE_BYTES))
            driver.strategy.walk(tree, candidate)
            assert driver.strategy.checksum(candidate) == ecc_hash_key(
                candidate.data
            )

    def test_checksum_without_prior_walk(self, driver, memory, rng):
        """checksum() alone must force key generation (empty-table scan
        with Last Refill)."""
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        assert driver.strategy.checksum(frame) == ecc_hash_key(frame.data)

    def test_unstable_walk_reuses_candidate(self, driver, memory, rng):
        """Stable walk then unstable walk for the same candidate: the
        hardware keeps the PFE (no keygen reset)."""
        stable, _f1 = stable_tree_of(memory, rng, 20)
        unstable, _f2 = stable_tree_of(memory, rng, 20)
        candidate = memory.allocate()
        candidate.fill(rng.bytes_array(PAGE_BYTES))
        driver.strategy.walk(stable, candidate)
        keys_before = driver.engine.stats.hash_keys_completed
        driver.strategy.walk(unstable, candidate)
        # Key was completed at most once for this candidate.
        assert driver.engine.stats.hash_keys_completed - keys_before <= 1
        assert driver.strategy.checksum(candidate) == ecc_hash_key(
            candidate.data
        )


class TestStaleHandling:
    def test_stale_node_raises_for_daemon(self, driver, memory, rng):
        tree, frames = stable_tree_of(memory, rng, 5)
        candidate = memory.allocate()
        candidate.fill(rng.bytes_array(PAGE_BYTES))
        memory.decref(frames[2].ppn)  # free a tree page behind its back
        with pytest.raises(StaleNodeError):
            # Direct strategy walk must surface staleness (the daemon
            # catches it and prunes).
            driver.strategy.walk(tree, candidate)

    def test_daemon_prunes_and_retries(self, rng):
        """End-to-end: freeing merged frames mid-run never wedges the
        daemon (exercised via CoW breaks on all sharers)."""
        memory = PhysicalMemory(128 << 20)
        hypervisor = Hypervisor(physical_memory=memory)
        content = rng.bytes_array(PAGE_BYTES)
        vms = [hypervisor.create_vm(f"v{i}") for i in range(2)]
        for vm in vms:
            hypervisor.populate_page(vm, 0, content, mergeable=True)
            hypervisor.populate_page(vm, 1, rng.bytes_array(PAGE_BYTES),
                                     mergeable=True)
        driver = PageForgeMergeDriver(
            hypervisor, MemoryController(0, memory, verify_ecc=False),
            ksm_config=KSMConfig(pages_to_scan=100),
        )
        driver.run_to_steady_state()
        # Break the merged page from both sides: the stable frame frees.
        hypervisor.guest_write(vms[0], 0, 0, np.array([1], dtype=np.uint8))
        hypervisor.guest_write(vms[1], 0, 0, np.array([2], dtype=np.uint8))
        driver.scan_pages(200)  # must prune the stale stable node
        hypervisor.verify_consistency()


class TestBatchConstruction:
    def test_batch_capacity_respected(self, driver, memory, rng):
        tree, _frames = stable_tree_of(memory, rng, 80)
        batch = driver.strategy._load_batch(tree, tree.root)
        assert len(batch.nodes) <= driver.engine.table.n_entries
        assert not batch.is_last  # 80 nodes cannot fit in one batch

    def test_small_tree_is_last(self, driver, memory, rng):
        tree, _frames = stable_tree_of(memory, rng, 7)
        batch = driver.strategy._load_batch(tree, tree.root)
        assert batch.is_last
        assert len(batch.nodes) == 7

    def test_all_entries_valid_after_load(self, driver, memory, rng):
        tree, _frames = stable_tree_of(memory, rng, 31)
        batch = driver.strategy._load_batch(tree, tree.root)
        table = driver.engine.table
        for i in range(len(batch.nodes)):
            assert table.entries[i].valid

    def test_custom_table_capacity(self, rng):
        memory = PhysicalMemory(128 << 20)
        hypervisor = Hypervisor(physical_memory=memory)
        driver = PageForgeMergeDriver(
            hypervisor, MemoryController(0, memory, verify_ecc=False),
            pf_config=PageForgeConfig(other_pages_entries=7),
        )
        tree, _frames = stable_tree_of(memory, rng, 50)
        batch = driver.strategy._load_batch(tree, tree.root)
        assert len(batch.nodes) == 7
