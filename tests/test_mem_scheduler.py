"""Tests for the FR-FCFS memory-request scheduler."""

import pytest

from repro.mem.dram import DRAMModel
from repro.mem.requests import AccessSource, MemRequest, RequestKind
from repro.mem.scheduler import FRFCFSScheduler


def read_req(ppn, line=0):
    return MemRequest(RequestKind.READ, ppn, line, AccessSource.CORE)


def write_req(ppn, line=0):
    return MemRequest(RequestKind.WRITE, ppn, line, AccessSource.CORE)


@pytest.fixture
def sched():
    return FRFCFSScheduler(DRAMModel(), read_entries=4, write_entries=4)


class TestEnqueue:
    def test_buffers_bounded(self, sched):
        for i in range(4):
            assert sched.enqueue(read_req(i))
        assert not sched.enqueue(read_req(99))
        for i in range(4):
            assert sched.enqueue(write_req(i))
        assert not sched.enqueue(write_req(99))

    def test_counts(self, sched):
        sched.enqueue(read_req(1))
        sched.enqueue(write_req(2))
        assert sched.pending_reads == 1
        assert sched.pending_writes == 1


class TestIssuePolicy:
    def test_empty_returns_none(self, sched):
        assert sched.issue_next() is None

    def test_reads_prioritised(self, sched):
        sched.enqueue(write_req(1))
        sched.enqueue(read_req(2))
        request, _lat = sched.issue_next()
        assert request.kind is RequestKind.READ

    def test_write_drain_at_high_water(self, sched):
        for i in range(3):  # 3 >= 4 * 0.75
            sched.enqueue(write_req(i))
        sched.enqueue(read_req(9))
        request, _lat = sched.issue_next()
        assert request.kind is RequestKind.WRITE
        assert sched.stats.write_drains == 1

    def test_row_hit_reordering(self, sched):
        """A younger request to an open row issues before older misses."""
        dram = sched.dram
        # Open a row by touching (0, 0).
        dram.access_line(0, 0, False, "core", 0.0)
        _c, bank0, row0 = dram.map_line(0, 0)
        # Find a ppn/line mapping to the same bank+row (same row segment)
        # and one mapping elsewhere.
        same_row = read_req(0, 2) if dram.map_line(0, 2)[1:] == (bank0, row0) \
            else read_req(0, 4)
        other = read_req(12345, 17)
        sched.enqueue(other)
        sched.enqueue(same_row)
        request, _lat = sched.issue_next()
        if dram.map_line(same_row.ppn, same_row.line_index)[1:] == (bank0, row0):
            assert request is same_row
            assert sched.stats.row_hit_first == 1

    def test_fcfs_without_open_rows(self, sched):
        sched.dram.reset_rows()
        first = read_req(100, 0)
        second = read_req(200, 0)
        sched.enqueue(first)
        sched.enqueue(second)
        request, _lat = sched.issue_next()
        assert request is first

    def test_drain_all(self, sched):
        for i in range(3):
            sched.enqueue(read_req(i))
            sched.enqueue(write_req(i + 10))
        issued = sched.drain_all()
        assert len(issued) == 6
        assert sched.pending_reads == 0
        assert sched.pending_writes == 0
        assert sched.stats.issued == 6

    def test_latency_recorded(self, sched):
        sched.enqueue(read_req(5))
        request, latency = sched.issue_next()
        assert latency > 0
        assert request.complete_cycle == request.issue_cycle + latency
