"""Hypothesis property tests for ``common/bitops`` and ``common/units``.

Both modules sit under every layer (the ECC codec, hash keys, and the
timing model) but were only exercised indirectly before; these pin down
their algebraic properties directly.
"""

import pytest
from hypothesis import given, strategies as st

from repro.common import bitops
from repro.common.bitops import bit_count, extract_bits, parity, set_bit
from repro.common.units import (
    CACHE_LINE_BYTES,
    GIB,
    LINES_PER_PAGE,
    PAGE_BYTES,
    bytes_to_gib,
    cycles_to_seconds,
    gbps,
    seconds_to_cycles,
)

# Imported under a non-collectable name: pytest would otherwise treat
# ``test_bit`` itself as a test function.
check_bit = bitops.test_bit

nonneg = st.integers(min_value=0, max_value=(1 << 72) - 1)
bit_index = st.integers(min_value=0, max_value=71)


class TestBitops:
    @given(nonneg)
    def test_bit_count_matches_int_bit_count(self, value):
        assert bit_count(value) == value.bit_count()

    @given(nonneg, nonneg)
    def test_bit_count_additive_over_disjoint_masks(self, a, b):
        assert bit_count((a << 72) | b) == bit_count(a) + bit_count(b)

    def test_bit_count_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_count(-1)

    @given(nonneg)
    def test_parity_is_bit_count_mod_2(self, value):
        assert parity(value) == bit_count(value) % 2

    @given(nonneg, nonneg)
    def test_parity_xor_homomorphism(self, a, b):
        assert parity(a ^ b) == parity(a) ^ parity(b)

    @given(nonneg, bit_index, st.integers(min_value=0, max_value=1))
    def test_set_bit_then_test_bit(self, value, index, bit):
        assert check_bit(set_bit(value, index, bit), index) == bool(bit)

    @given(nonneg, bit_index, st.integers(min_value=0, max_value=1))
    def test_set_bit_idempotent(self, value, index, bit):
        once = set_bit(value, index, bit)
        assert set_bit(once, index, bit) == once

    @given(nonneg, bit_index, bit_index,
           st.integers(min_value=0, max_value=1))
    def test_set_bit_leaves_other_bits(self, value, index, other, bit):
        if index == other:
            return
        assert check_bit(set_bit(value, index, bit), other) == \
            check_bit(value, other)

    @given(nonneg, st.integers(min_value=0, max_value=80),
           st.integers(min_value=0, max_value=80))
    def test_extract_bits_matches_shift_mask(self, value, offset, width):
        expected = (value >> offset) & ((1 << width) - 1)
        assert extract_bits(value, offset, width) == expected

    @given(nonneg)
    def test_extract_reassembles_value(self, value):
        lo = extract_bits(value, 0, 36)
        hi = extract_bits(value, 36, 36)
        assert (hi << 36) | lo == value

    def test_extract_bits_rejects_negative_shape(self):
        with pytest.raises(ValueError):
            extract_bits(5, -1, 3)
        with pytest.raises(ValueError):
            extract_bits(5, 3, -1)


class TestUnits:
    def test_architectural_constants(self):
        assert PAGE_BYTES == 4096
        assert CACHE_LINE_BYTES == 64
        assert LINES_PER_PAGE * CACHE_LINE_BYTES == PAGE_BYTES

    @given(st.integers(min_value=0, max_value=10**12),
           st.sampled_from([1e9, 2e9, 3.6e9]))
    def test_cycles_seconds_round_trip(self, cycles, freq):
        assert seconds_to_cycles(cycles_to_seconds(cycles, freq),
                                 freq) == cycles

    @given(st.floats(min_value=0.0, max_value=10.0,
                     allow_nan=False, allow_infinity=False),
           st.sampled_from([1e9, 2e9]))
    def test_seconds_to_cycles_monotone(self, seconds, freq):
        assert seconds_to_cycles(seconds, freq) <= \
            seconds_to_cycles(seconds + 1.0, freq)

    @given(st.integers(min_value=0, max_value=1 << 50))
    def test_bytes_to_gib_round_trip(self, n_bytes):
        assert bytes_to_gib(n_bytes) * GIB == pytest.approx(n_bytes)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.floats(min_value=1e-6, max_value=1e3,
                     allow_nan=False, allow_infinity=False))
    def test_gbps_scales_linearly_in_bytes(self, n_bytes, seconds):
        assert gbps(2 * n_bytes, seconds) == \
            pytest.approx(2 * gbps(n_bytes, seconds))

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_gbps_zero_interval_is_zero(self, n_bytes):
        assert gbps(n_bytes, 0.0) == 0.0
        assert gbps(n_bytes, -1.0) == 0.0
