"""Open-loop load harness: determinism, exact accounting, overload."""

import json

import pytest

from repro.serve import (
    LoadSpec,
    MergeServer,
    ServeConfig,
    measure_capacity,
    run_loadgen,
    run_overload_check,
)
from repro.serve.loadgen import _build_schedule

pytestmark = pytest.mark.slow


class TestSchedule:
    def test_deterministic_for_a_seed(self):
        spec = LoadSpec(target_qps=100, duration_s=1.0, seed=42,
                        tenants=3, heavy_frac=0.3)
        assert _build_schedule(spec) == _build_schedule(spec)

    def test_seed_changes_schedule(self):
        base = LoadSpec(target_qps=100, duration_s=1.0, seed=1)
        other = LoadSpec(target_qps=100, duration_s=1.0, seed=2)
        assert _build_schedule(base) != _build_schedule(other)

    def test_open_loop_rate_and_shape(self):
        spec = LoadSpec(target_qps=200, duration_s=2.0, seed=7,
                        tenants=2, heavy_frac=0.25)
        schedule = _build_schedule(spec)
        # Poisson arrivals: expect ~400 +- a few sigma.
        assert 300 < len(schedule) < 500
        arrivals = [at for _, at, _, _ in schedule]
        assert arrivals == sorted(arrivals)
        assert all(0 <= at < spec.duration_s for at in arrivals)
        heavy = sum(1 for _, _, is_heavy, _ in schedule if is_heavy)
        assert 0 < heavy < len(schedule)
        tenants = {tenant for _, _, _, tenant in schedule}
        assert tenants <= {"tenant0", "tenant1"}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(target_qps=0)
        with pytest.raises(ValueError):
            LoadSpec(heavy_frac=1.5)
        with pytest.raises(ValueError):
            LoadSpec(tenants=0)


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(port=0, n_vms=2, pages_per_vm=40,
                         queue_depth=16)
    srv = MergeServer(config).start()
    yield srv
    srv.close()


class TestRunLoadgen:
    def test_accounting_exact_and_results_atomic(self, server, tmp_path):
        spec = LoadSpec(target_qps=60, duration_s=1.0, seed=2017,
                        tenants=2, heavy_frac=0.1, heavy_pages=100,
                        out_dir=str(tmp_path))
        result = run_loadgen(spec, server.base_url)

        assert result.offered == len(_build_schedule(spec))
        assert result.offered > 0
        assert result.accounting_exact
        assert result.transport_errors == 0
        assert result.accepted_over_deadline == 0
        # Latency summary carries the tail percentiles.
        for key in ("p50", "p90", "p99", "p99.9"):
            assert key in result.latency

        # The run dir was published atomically and completely.
        run_dirs = list(tmp_path.iterdir())
        assert len(run_dirs) == 1
        names = {p.name for p in run_dirs[0].iterdir()}
        assert names == {"spec.json", "summary.json", "requests.csv"}
        summary = json.loads((run_dirs[0] / "summary.json").read_text())
        assert summary["offered"] == result.offered
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_second_run_accounts_against_its_own_delta(self, server):
        # Counters on the server are cumulative; each run must diff
        # its own before/after snapshots or accounting breaks on any
        # server that has already seen traffic.
        spec = LoadSpec(target_qps=40, duration_s=0.5, seed=99)
        first = run_loadgen(spec, server.base_url)
        second = run_loadgen(spec, server.base_url)
        assert first.accounting_exact and second.accounting_exact


class TestCapacity:
    def test_probe_measures_positive_throughput(self, server):
        qps = measure_capacity(server.base_url, probe_s=0.4)
        assert qps > 10


class TestOverload:
    def test_overload_verdict_invariants(self, tmp_path):
        config = ServeConfig(port=0, n_vms=2, pages_per_vm=40)
        srv = MergeServer(config).start()
        try:
            # Probe and run long enough that the goodput ratio has
            # statistical margin over the floor; shorter windows sit
            # right at it and flake.
            verdict = run_overload_check(
                srv, overload_factor=2.0, probe_s=1.0,
                duration_s=2.0, heavy_frac=0.5, heavy_pages=200,
                out_dir=str(tmp_path),
            )
            result = verdict.result
            # The three gates of the robustness story:
            assert result.accounting_exact
            assert verdict.deadline_violations == 0
            assert verdict.goodput_floor_ok, (
                f"goodput ratio {verdict.goodput_ratio:.3f} under "
                f"floor {verdict.goodput_floor}"
            )
            assert verdict.ok
            # Genuine overload: the offered rate beat capacity, so
            # some requests must have been turned away.
            assert verdict.overload_factor == 2.0
            assert result.offered > 0
            assert result.shed + result.failed > 0
        finally:
            srv.drain(timeout=10)
