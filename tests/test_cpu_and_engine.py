"""Tests for repro.cpu (cores, scheduler) and the event engine."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.cpu import Core, KernelTaskScheduler
from repro.sim.engine import EventQueue


class TestCore:
    def test_fifo_serialisation(self):
        core = Core(0)
        s1, c1 = core.run_query(0.0, 1.0)
        s2, c2 = core.run_query(0.5, 1.0)  # arrives while busy
        assert (s1, c1) == (0.0, 1.0)
        assert (s2, c2) == (1.0, 2.0)

    def test_idle_gap(self):
        core = Core(0)
        core.run_query(0.0, 1.0)
        s, c = core.run_query(5.0, 1.0)
        assert s == 5.0 and c == 6.0

    def test_kernel_work_mixes_in(self):
        core = Core(0)
        core.run_query(0.0, 1.0)
        s, _c = core.run_kernel_work(0.2, 0.5)
        assert s == 1.0  # queued behind the query
        assert core.stats.kernel_busy_s == pytest.approx(0.5)

    def test_utilization(self):
        core = Core(0)
        core.run_query(0.0, 2.0)
        core.run_kernel_work(2.0, 1.0)
        assert core.stats.utilization(10.0) == pytest.approx(0.3)
        assert core.stats.kernel_share(10.0) == pytest.approx(0.1)

    def test_cycles_conversion(self):
        core = Core(0, frequency_hz=2e9)
        assert core.cycles_to_seconds(2e9) == pytest.approx(1.0)


class TestScheduler:
    def test_placements_cover_and_sum(self):
        sched = KernelTaskScheduler(10, DeterministicRNG(1, "s"),
                                    stickiness=0.5)
        for _ in range(1000):
            sched.next_core()
        assert sum(sched.placements) == 1000
        assert all(0 <= c < 10 for c in [sched.current_core])

    def test_stickiness_skews_occupancy(self):
        """High stickiness must concentrate placements (Table 4's
        max >> avg per-core KSM share)."""
        sched = KernelTaskScheduler(10, DeterministicRNG(2, "s"),
                                    stickiness=0.95)
        for _ in range(400):
            sched.next_core()
        shares = sched.placement_shares()
        assert max(shares) > 2.5 * (1.0 / 10)

    def test_zero_stickiness_spreads(self):
        sched = KernelTaskScheduler(4, DeterministicRNG(3, "s"),
                                    stickiness=0.0)
        for _ in range(4000):
            sched.next_core()
        shares = sched.placement_shares()
        assert max(shares) < 0.4

    def test_invalid_stickiness(self):
        with pytest.raises(ValueError):
            KernelTaskScheduler(4, DeterministicRNG(4, "s"), stickiness=1.5)

    def test_empty_shares(self):
        sched = KernelTaskScheduler(4, DeterministicRNG(5, "s"))
        assert sched.placement_shares() == [0.0] * 4


class TestEventQueue:
    def test_ordering(self):
        queue = EventQueue()
        log = []
        queue.schedule(2.0, log.append, "b")
        queue.schedule(1.0, log.append, "a")
        queue.schedule(3.0, log.append, "c")
        queue.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, log.append, 1)
        queue.schedule(1.0, log.append, 2)
        queue.run()
        assert log == [1, 2]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.5, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [1.5]

    def test_schedule_in(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: queue.schedule_in(0.5, log.append, "x"))
        queue.run()
        assert log == ["x"]
        assert queue.now == pytest.approx(1.5)

    def test_run_until_stops(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, log.append, "early")
        queue.schedule(5.0, log.append, "late")
        queue.run_until(2.0)
        assert log == ["early"]
        assert queue.now == 2.0
        assert len(queue) == 1

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule(0.5, lambda: None)

    def test_cascading_events(self):
        queue = EventQueue()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 10:
                queue.schedule_in(1.0, tick)

        queue.schedule(0.0, tick)
        queue.run()
        assert counter["n"] == 10
        assert queue.events_dispatched == 10
