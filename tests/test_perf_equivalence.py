"""Vectorized-vs-scalar bit-for-bit equivalence properties.

Every hot path the bench harness times has a scalar reference
implementation; these properties pin the vectorized versions to them
bit-for-bit, so a throughput optimisation can never silently change a
merge decision, an ECC code, a checksum, or an event dispatch order.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.common.units import PAGE_BYTES
from repro.core.hashkey import ecc_hash_key
from repro.ecc.hamming import _encode_words_swar, encode_page, encode_words
from repro.ksm.compare import compare_pages, compare_pages_scalar
from repro.ksm.jhash import jhash2, jhash2_batch, page_checksum
from repro.sim.engine import EventQueue

# Page pairs: a shared prefix of random length, then independent tails —
# exercises equal pages, early divergence, and deep divergence.
_page_pairs = st.tuples(
    st.integers(0, PAGE_BYTES),      # shared prefix length
    st.integers(0, 2**32 - 1),       # content seed
    st.booleans(),                   # force-equal pair
)


def _make_pair(prefix_len, seed, equal):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=PAGE_BYTES, dtype=np.uint8)
    if equal:
        return a, a.copy()
    b = a.copy()
    tail = rng.integers(0, 256, size=PAGE_BYTES - prefix_len, dtype=np.uint8)
    b[prefix_len:] = tail
    return a, b


@given(_page_pairs)
@settings(max_examples=60)
def test_compare_pages_matches_scalar(params):
    a, b = _make_pair(*params)
    assert compare_pages(a, b) == compare_pages_scalar(a, b)
    assert compare_pages(b, a) == compare_pages_scalar(b, a)
    # bytes and ndarray inputs agree (the walk fast path passes bytes).
    assert compare_pages(a.tobytes(), b.tobytes()) == compare_pages(a, b)


@given(st.integers(0, 2**32 - 1), st.integers(1, 600))
@settings(max_examples=40)
def test_encode_words_matches_swar(seed, n_words):
    words = np.random.default_rng(seed).integers(
        0, 2**64, size=n_words, dtype=np.uint64
    )
    np.testing.assert_array_equal(
        encode_words(words), _encode_words_swar(words)
    )


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=25)
def test_ecc_hash_key_cached_codes_match_fresh_encode(seed):
    page = np.random.default_rng(seed).integers(
        0, 256, size=PAGE_BYTES, dtype=np.uint8
    )
    codes = encode_page(page)
    assert ecc_hash_key(page) == ecc_hash_key(page, codes=codes)


@given(st.integers(0, 2**32 - 1), st.integers(1, 12), st.integers(1, 300))
@settings(max_examples=25)
def test_jhash2_batch_matches_scalar_rows(seed, n_rows, n_words):
    rows = np.random.default_rng(seed).integers(
        0, 2**32, size=(n_rows, n_words), dtype=np.uint32
    )
    batch = jhash2_batch(rows, 17)
    for i in range(n_rows):
        assert int(batch[i]) == jhash2(rows[i], 17)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=15)
def test_page_checksum_is_jhash2_of_window(seed):
    page = np.random.default_rng(seed).integers(
        0, 256, size=PAGE_BYTES, dtype=np.uint8
    )
    assert page_checksum(page, n_bytes=1024, initval=17) == jhash2(
        np.ascontiguousarray(page[:1024]).view(np.uint32), 17
    )


# Event times drawn from a tiny grid so ties are common — the property
# is about FIFO stability under ties, not about ordering distinct times.
_event_times = st.lists(
    st.integers(0, 4).map(lambda t: t / 4.0), min_size=0, max_size=60
)


@given(_event_times)
@settings(max_examples=60)
def test_schedule_batch_dispatch_order_matches_per_call(times):
    def dispatch_order(loader):
        q = EventQueue()
        order = []
        loader(q, order)
        q.run()
        return order

    def per_call(q, order):
        for i, t in enumerate(times):
            q.schedule(t, order.append, (t, i))

    def batched(q, order):
        q.schedule_batch(
            (t, order.append, ((t, i),)) for i, t in enumerate(times)
        )

    def split(q, order):
        # Half per-call, half batched into a non-empty heap: exercises
        # the heapify path with the same global sequence numbering.
        half = len(times) // 2
        for i, t in enumerate(times[:half]):
            q.schedule(t, order.append, (t, i))
        q.schedule_batch(
            (t, order.append, ((t, half + i),))
            for i, t in enumerate(times[half:])
        )

    reference = dispatch_order(per_call)
    assert dispatch_order(batched) == reference
    assert dispatch_order(split) == reference


@given(_event_times, _event_times)
@settings(max_examples=30)
def test_schedule_batch_interleaved_with_run(first, second):
    """Bulk loads landing mid-run must merge into the live heap."""
    order = []
    q = EventQueue()

    def load_second():
        q.schedule_batch(
            (q.now + t, order.append, (("second", t, i),))
            for i, t in enumerate(second)
        )

    q.schedule(0.0, load_second)
    for i, t in enumerate(first):
        q.schedule(t, order.append, ("first", t, i))
    q.run()
    assert len(order) == len(first) + len(second)
    times_seen = [t for _tag, t, _i in order]
    assert times_seen == sorted(times_seen)
