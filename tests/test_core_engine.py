"""Tests for the PageForge comparator engine and the OS drivers."""

import numpy as np

from repro.cache import SetAssocCache, SnoopBus
from repro.cache.mesi import MESIState
from repro.common.config import KSMConfig, ProcessorConfig
from repro.common.units import PAGE_BYTES
from repro.core import (
    ArbitrarySetStrategy,
    PageForgeAPI,
    PageForgeEngine,
    PageForgeMergeDriver,
    ecc_hash_key,
    miss_sentinel,
)
from repro.ksm import ContentRBTree, KSMDaemon, RBNode
from repro.mem import MemoryController, PhysicalMemory
from repro.virt import Hypervisor


def make_engine(memory, bus=None, line_sampling=1):
    mc = MemoryController(0, memory)
    return PageForgeEngine(mc, bus=bus, line_sampling=line_sampling)


def alloc_page(memory, rng, data=None):
    frame = memory.allocate()
    frame.fill(data if data is not None else rng.bytes_array(PAGE_BYTES))
    return frame


class TestComparator:
    def test_finds_duplicate(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        data = rng.bytes_array(PAGE_BYTES)
        cand = alloc_page(memory, rng, data)
        twin = alloc_page(memory, rng, data)
        api.insert_PPN(0, twin.ppn)
        api.insert_PFE(cand.ppn, last_refill=True, ptr=0)
        api.trigger()
        info = api.get_PFE_info()
        assert info.scanned and info.duplicate
        assert info.ptr == 0  # Ptr names the matching entry

    def test_walks_less_more(self, memory, rng):
        """Three pages ordered small < candidate < large: the walk must
        follow More from the small page, then Less from the large one."""
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        small = alloc_page(memory, rng, np.zeros(PAGE_BYTES, dtype=np.uint8))
        large = alloc_page(
            memory, rng, np.full(PAGE_BYTES, 0xFF, dtype=np.uint8)
        )
        mid_data = rng.bytes_array(PAGE_BYTES)
        mid_data[0] = 0x80
        cand = alloc_page(memory, rng, mid_data)
        twin = alloc_page(memory, rng, mid_data)
        # Tree: small at 0 -> more=1 (large) -> less=2 (twin).
        api.insert_PPN(0, small.ppn, less=miss_sentinel(0, "left"), more=1)
        api.insert_PPN(1, large.ppn, less=2, more=miss_sentinel(1, "right"))
        api.insert_PPN(2, twin.ppn, less=miss_sentinel(2, "left"),
                       more=miss_sentinel(2, "right"))
        api.insert_PFE(cand.ppn, last_refill=True, ptr=0)
        api.trigger()
        info = api.get_PFE_info()
        assert info.duplicate and info.ptr == 2
        assert engine.stats.page_comparisons == 3

    def test_miss_leaves_sentinel_in_ptr(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        other = alloc_page(memory, rng, np.zeros(PAGE_BYTES, dtype=np.uint8))
        cand = alloc_page(memory, rng)  # random > zeros
        api.insert_PPN(0, other.ppn, less=miss_sentinel(0, "left"),
                       more=miss_sentinel(0, "right"))
        api.insert_PFE(cand.ppn, last_refill=True, ptr=0)
        api.trigger()
        info = api.get_PFE_info()
        assert info.scanned and not info.duplicate
        assert info.ptr == miss_sentinel(0, "right")

    def test_hash_key_generated_in_background(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        data = rng.bytes_array(PAGE_BYTES)
        cand = alloc_page(memory, rng, data)
        twin = alloc_page(memory, rng, data)
        api.insert_PPN(0, twin.ppn)
        api.insert_PFE(cand.ppn, last_refill=False, ptr=0)
        api.trigger()
        info = api.get_PFE_info()
        # Full-page comparison covered all hash offsets -> H set even
        # without Last Refill.
        assert info.hash_ready
        assert info.hash_key == ecc_hash_key(data)

    def test_last_refill_forces_hash(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        cand = alloc_page(memory, rng)
        api.insert_PFE(cand.ppn, last_refill=True, ptr=0)  # empty table
        api.trigger()
        info = api.get_PFE_info()
        assert info.hash_ready
        assert info.hash_key == ecc_hash_key(
            memory.frame(cand.ppn).data
        )
        assert engine.stats.hash_fill_reads == 4

    def test_no_hash_without_last_refill_or_coverage(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        cand = alloc_page(memory, rng)
        zeros = alloc_page(memory, rng, np.zeros(PAGE_BYTES, dtype=np.uint8))
        # Diverges in line 0 -> only line 0 observed, sections 2-4 missing.
        api.insert_PPN(0, zeros.ppn, less=miss_sentinel(0, "left"),
                       more=miss_sentinel(0, "right"))
        api.insert_PFE(cand.ppn, last_refill=False, ptr=0)
        api.trigger()
        assert not api.get_PFE_info().hash_ready

    def test_sampled_mode_same_outcome(self, memory, rng):
        data = rng.bytes_array(PAGE_BYTES)
        for sampling in (1, 8):
            engine = make_engine(memory, line_sampling=sampling)
            api = PageForgeAPI(engine)
            cand = alloc_page(memory, rng, data)
            twin = alloc_page(memory, rng, data)
            api.insert_PPN(0, twin.ppn)
            api.insert_PFE(cand.ppn, last_refill=True, ptr=0)
            api.trigger()
            info = api.get_PFE_info()
            assert info.duplicate
            assert info.hash_key == ecc_hash_key(data)

    def test_network_service_path(self, memory, rng):
        """Lines cached on chip are serviced from the network, not DRAM."""
        proc = ProcessorConfig(n_cores=1)
        bus = SnoopBus()
        l3 = SetAssocCache(proc.l3)
        bus.register_shared(l3)
        engine = make_engine(memory, bus=bus)
        api = PageForgeAPI(engine)
        data = rng.bytes_array(PAGE_BYTES)
        cand = alloc_page(memory, rng, data)
        twin = alloc_page(memory, rng, data)
        for line in range(64):  # the candidate is fully cached
            l3.insert(cand.ppn * 64 + line, MESIState.SHARED)
        api.insert_PPN(0, twin.ppn)
        api.insert_PFE(cand.ppn, last_refill=True, ptr=0)
        api.trigger()
        assert engine.stats.lines_from_network == 64
        assert api.get_PFE_info().duplicate

    def test_table_cycles_recorded(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        cand = alloc_page(memory, rng)
        api.insert_PFE(cand.ppn, last_refill=True, ptr=0)
        api.trigger()
        assert engine.stats.tables_processed == 1
        assert len(engine.stats.table_cycles) == 1
        assert engine.stats.table_cycles[0] > 0


class TestArbitrarySetStrategy:
    def test_scan_set_finds_match(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        strategy = ArbitrarySetStrategy(api)
        data = rng.bytes_array(PAGE_BYTES)
        cand = alloc_page(memory, rng, data)
        others = [alloc_page(memory, rng) for _ in range(40)]
        twin = alloc_page(memory, rng, data)
        ppns = [f.ppn for f in others] + [twin.ppn]
        assert strategy.scan_set(cand.ppn, ppns) == twin.ppn

    def test_scan_set_miss(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        strategy = ArbitrarySetStrategy(api)
        cand = alloc_page(memory, rng)
        others = [alloc_page(memory, rng) for _ in range(5)]
        assert strategy.scan_set(cand.ppn, [f.ppn for f in others]) is None

    def test_scan_set_spans_batches(self, memory, rng):
        """More pages than Scan-Table entries forces refills."""
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        strategy = ArbitrarySetStrategy(api)
        data = rng.bytes_array(PAGE_BYTES)
        cand = alloc_page(memory, rng, data)
        others = [alloc_page(memory, rng) for _ in range(35)]
        twin = alloc_page(memory, rng, data)
        ppns = [f.ppn for f in others] + [twin.ppn]
        assert strategy.scan_set(cand.ppn, ppns) == twin.ppn

    def test_scan_graph(self, memory, rng):
        engine = make_engine(memory)
        api = PageForgeAPI(engine)
        strategy = ArbitrarySetStrategy(api)
        lo = alloc_page(memory, rng, np.zeros(PAGE_BYTES, dtype=np.uint8))
        hi = alloc_page(memory, rng,
                        np.full(PAGE_BYTES, 0xFF, dtype=np.uint8))
        data = rng.bytes_array(PAGE_BYTES)
        cand = alloc_page(memory, rng, data)
        twin = alloc_page(memory, rng, data)
        graph = {
            "root": (lo.ppn, None, "right-child"),
            "right-child": (hi.ppn, "target", None),
            "target": (twin.ppn, None, None),
        }
        assert strategy.scan_graph(cand.ppn, graph, "root") == "target"


class TestTreeStrategyVsSoftware:
    def test_hardware_walk_matches_software(self, memory, rng):
        """The Scan-Table walk must reach the same node as a software
        tree search, across refill boundaries (trees > 31 nodes)."""
        hyp = Hypervisor(physical_memory=memory)
        mc = MemoryController(0, memory)
        driver = PageForgeMergeDriver(hyp, mc)
        tree = ContentRBTree("stable")
        frames = []
        for _ in range(80):
            frame = alloc_page(memory, rng)
            frames.append(frame)
            tree.insert(RBNode(lambda f=frame: f.data,
                               payload=("stable", frame.ppn)))
        # Search for an existing page.
        target = frames[37]
        outcome = driver.strategy.walk(tree, target)
        assert outcome.match is not None
        assert outcome.match.payload == ("stable", target.ppn)
        # And a missing page: insertion point must equal software's.
        probe = alloc_page(memory, rng)
        hw = driver.strategy.walk(tree, probe)
        sw = tree.walk(probe.data)
        assert hw.match is None and sw.match is None
        assert hw.parent is sw.parent
        assert hw.direction == sw.direction


class TestMergeDriverEquivalence:
    def test_driver_matches_ksm_footprint(self, rng):
        def build():
            memory = PhysicalMemory(64 * 1024 * 1024)
            hyp = Hypervisor(physical_memory=memory)
            content_rng = rng.derive("contents")
            shared = [content_rng.bytes_array(PAGE_BYTES) for _ in range(4)]
            for i in range(3):
                vm = hyp.create_vm(f"vm{i}")
                for g, c in enumerate(shared):
                    hyp.populate_page(vm, g, c, mergeable=True)
                hyp.populate_page(vm, 4, content_rng.bytes_array(PAGE_BYTES),
                                  mergeable=True)
            return memory, hyp

        memory, hyp = build()
        daemon = KSMDaemon(hyp, KSMConfig(pages_to_scan=200))
        daemon.run_to_steady_state()
        sw_footprint = hyp.footprint_pages()

        memory, hyp = build()
        driver = PageForgeMergeDriver(
            hyp, MemoryController(0, memory),
            ksm_config=KSMConfig(pages_to_scan=200),
        )
        driver.run_to_steady_state()
        assert hyp.footprint_pages() == sw_footprint
