"""Tests for repro.workloads: memory images, churn, load generation."""

import numpy as np
import pytest

from repro.common.config import KSMConfig, TAILBENCH_APPS
from repro.common.rng import DeterministicRNG
from repro.ksm import KSMDaemon
from repro.mem import PhysicalMemory
from repro.virt import Hypervisor
from repro.workloads import (
    ArrivalProcess,
    LatencyCollector,
    MemoryImageProfile,
    QueryRecord,
    ServiceTimeModel,
    WriteChurner,
    build_vm_images,
)
from repro.workloads.memimage import ContentFactory


@pytest.fixture
def built(rng):
    hyp = Hypervisor(physical_memory=PhysicalMemory(256 * 1024 * 1024))
    profile = MemoryImageProfile(n_pages_per_vm=100)
    images = build_vm_images(hyp, profile, n_vms=4, rng=rng)
    return hyp, profile, images


class TestProfile:
    def test_counts_sum_to_total(self):
        profile = MemoryImageProfile(n_pages_per_vm=1000)
        assert sum(profile.counts()) == 1000

    def test_for_app(self):
        app = TAILBENCH_APPS["moses"]
        profile = MemoryImageProfile.for_app(app, 500)
        assert profile.unmergeable_frac == app.unmergeable_frac
        assert profile.zero_frac == app.zero_frac

    def test_default_mix_matches_paper(self):
        profile = MemoryImageProfile(n_pages_per_vm=1000)
        n_unique, n_churn, n_zero, n_all, n_pair = profile.counts()
        assert (n_unique + n_churn) == pytest.approx(450, abs=5)
        assert n_zero == pytest.approx(50, abs=5)
        assert (n_all + n_pair) == pytest.approx(500, abs=5)


class TestContentFactory:
    def test_pages_unique(self, rng):
        factory = ContentFactory(rng)
        pages = {factory.make().tobytes() for _ in range(200)}
        assert len(pages) == 200

    def test_common_prefix_shared(self, rng):
        factory = ContentFactory(rng, common_prefix_bytes=640)
        a, b = factory.make(), factory.make()
        assert np.array_equal(a[:640], b[:640])
        assert not np.array_equal(a, b)

    def test_mutations_beyond_prefix(self, rng):
        factory = ContentFactory(rng, n_templates=1,
                                 common_prefix_bytes=640)
        template = factory.templates[0]
        page = factory.make()
        assert np.array_equal(page[:640], template[:640])


class TestBuildImages:
    def test_footprints(self, built):
        hyp, profile, images = built
        assert hyp.guest_pages() == 400
        assert hyp.footprint_pages() == images.baseline_footprint()

    def test_shared_pages_identical_across_vms(self, built):
        hyp, _profile, images = built
        gpns = images.category_gpns["shared_all"]
        if not gpns:
            pytest.skip("no shared pages at this size")
        gpn = gpns.start
        contents = [
            hyp.guest_read(vm, gpn).tobytes() for vm in images.vms
        ]
        assert len(set(contents)) == 1

    def test_unique_pages_differ_across_vms(self, built):
        hyp, _profile, images = built
        gpn = images.category_gpns["unique"].start
        contents = [
            hyp.guest_read(vm, gpn).tobytes() for vm in images.vms
        ]
        assert len(set(contents)) == len(images.vms)

    def test_zero_pages_are_zero(self, built):
        hyp, _profile, images = built
        zeros = images.category_gpns["zero"]
        frame = hyp.memory.frame(images.vms[0].translate(zeros.start))
        assert frame.is_zero()

    def test_all_pages_madvised(self, built):
        _hyp, _profile, images = built
        for vm in images.vms:
            assert len(vm.mergeable_mappings()) == vm.n_pages

    def test_expected_footprint_reached_by_ksm(self, built):
        hyp, _profile, images = built
        daemon = KSMDaemon(hyp, KSMConfig(pages_to_scan=2000))
        daemon.run_to_steady_state(max_passes=6)
        assert hyp.footprint_pages() == images.expected_merged_footprint()
        hyp.verify_consistency()

    def test_pair_sharing_structure(self, rng):
        hyp = Hypervisor(physical_memory=PhysicalMemory(128 * 1024 * 1024))
        profile = MemoryImageProfile(n_pages_per_vm=50, all_shared_frac=0.0)
        images = build_vm_images(hyp, profile, n_vms=4, rng=rng)
        gpn = images.category_gpns["pair_shared"].start
        c = [hyp.guest_read(vm, gpn).tobytes() for vm in images.vms]
        assert c[0] == c[1] and c[2] == c[3] and c[0] != c[2]


class TestWriteChurner:
    def test_churn_changes_contents(self, built):
        hyp, _profile, images = built
        churner = WriteChurner(hyp, images.churn_pages,
                               DeterministicRNG(5, "churn"),
                               fraction_per_tick=1.0)
        vm_id, gpn = images.churn_pages[0]
        before = hyp.guest_read(hyp.vms[vm_id], gpn).copy()
        churner.tick()
        after = hyp.guest_read(hyp.vms[vm_id], gpn)
        assert not np.array_equal(before, after)

    def test_churn_breaks_merged_pages(self, built):
        hyp, _profile, images = built
        daemon = KSMDaemon(hyp, KSMConfig(pages_to_scan=2000))
        daemon.run_to_steady_state(max_passes=6)
        merged = hyp.footprint_pages()
        churner = WriteChurner(hyp, images.churn_pages,
                               DeterministicRNG(5, "churn"),
                               fraction_per_tick=1.0)
        churner.tick()
        # Churn pages were duplicated-and-merged? They merged because the
        # churner had not run; writing must CoW-break them.
        assert hyp.footprint_pages() >= merged
        hyp.verify_consistency()

    def test_empty_churn_list(self, built):
        hyp, _profile, _images = built
        churner = WriteChurner(hyp, [], DeterministicRNG(5, "churn"))
        assert churner.tick() == 0

    def test_fraction_per_tick_bounds_writes(self, built):
        hyp, _profile, images = built
        churner = WriteChurner(hyp, images.churn_pages,
                               DeterministicRNG(5, "churn"),
                               fraction_per_tick=0.5)
        written = churner.tick()
        expected = max(1, int(len(images.churn_pages) * 0.5))
        assert written == expected
        assert churner.writes_issued == expected

    def test_tiny_fraction_still_churns_one_page(self, built):
        hyp, _profile, images = built
        churner = WriteChurner(hyp, images.churn_pages,
                               DeterministicRNG(5, "churn"),
                               fraction_per_tick=1e-9)
        assert churner.tick() == 1

    def test_churn_is_seed_deterministic(self, rng):
        def run_once():
            hyp = Hypervisor(
                physical_memory=PhysicalMemory(256 * 1024 * 1024)
            )
            images = build_vm_images(
                hyp, MemoryImageProfile(n_pages_per_vm=100), n_vms=4,
                rng=DeterministicRNG(1234, "tests"),
            )
            churner = WriteChurner(hyp, images.churn_pages,
                                   DeterministicRNG(5, "churn"),
                                   fraction_per_tick=0.5)
            for _ in range(3):
                churner.tick()
            return [
                hyp.guest_read(hyp.vms[vm_id], gpn).tobytes()
                for vm_id, gpn in images.churn_pages
            ]

        assert run_once() == run_once()


class TestArrivals:
    def test_rate_approximation(self):
        process = ArrivalProcess(1000.0, DeterministicRNG(3, "arr"))
        times = process.arrivals_until(2.0)
        assert len(times) == pytest.approx(2000, rel=0.15)
        assert all(t1 < t2 for t1, t2 in zip(times, times[1:]))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ArrivalProcess(0, DeterministicRNG(3, "arr"))

    def test_seed_determinism(self):
        first = ArrivalProcess(
            500.0, DeterministicRNG(3, "arr")
        ).arrivals_until(1.0)
        second = ArrivalProcess(
            500.0, DeterministicRNG(3, "arr")
        ).arrivals_until(1.0)
        assert first == second

    def test_rate_scales_arrival_count(self):
        slow = ArrivalProcess(
            100.0, DeterministicRNG(3, "arr")
        ).arrivals_until(2.0)
        fast = ArrivalProcess(
            1000.0, DeterministicRNG(3, "arr")
        ).arrivals_until(2.0)
        assert len(fast) > 5 * len(slow)


class TestServiceModel:
    def test_factor_mean_is_one(self):
        model = ServiceTimeModel(0.8, DeterministicRNG(4, "svc"))
        factors = [model.factor() for _ in range(20000)]
        assert np.mean(factors) == pytest.approx(1.0, rel=0.05)

    def test_cv_respected(self):
        model = ServiceTimeModel(0.5, DeterministicRNG(4, "svc"))
        factors = np.array([model.factor() for _ in range(20000)])
        assert np.std(factors) / np.mean(factors) == pytest.approx(
            0.5, rel=0.1
        )


class TestLatencyCollector:
    def _record(self, vm, arrival, wait, service):
        return QueryRecord(vm, arrival, arrival + wait,
                           arrival + wait + service)

    def test_sojourn_components(self):
        r = self._record(0, 1.0, 0.5, 2.0)
        assert r.sojourn_s == pytest.approx(2.5)
        assert r.wait_s == pytest.approx(0.5)
        assert r.service_s == pytest.approx(2.0)

    def test_mean_and_p95(self):
        collector = LatencyCollector()
        for i in range(100):
            collector.add(self._record(0, float(i), 0.0, (i + 1) / 100))
        assert collector.mean_sojourn_s() == pytest.approx(0.505)
        assert collector.p95_sojourn_s() == pytest.approx(0.955, abs=0.01)

    def test_geomean_across_vms(self):
        collector = LatencyCollector()
        collector.add(self._record(0, 0.0, 0.0, 1.0))
        collector.add(self._record(1, 0.0, 0.0, 4.0))
        assert collector.geomean_mean_sojourn_s() == pytest.approx(2.0)

    def test_drop_warmup(self):
        collector = LatencyCollector()
        collector.add(self._record(0, 0.5, 0.0, 1.0))
        collector.add(self._record(0, 2.0, 0.0, 1.0))
        collector.drop_warmup(1.0)
        assert len(collector) == 1

    def test_empty_stats(self):
        collector = LatencyCollector()
        assert collector.mean_sojourn_s() == 0.0
        assert collector.geomean_p95_sojourn_s() == 0.0
