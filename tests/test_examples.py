"""Smoke tests: every example program must run to completion.

Examples are part of the public surface; they are executed in-process
(with small parameters where they accept them) so a regression in any
API they use fails the suite.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/custom_merging_algorithm.py", []),
    ("examples/esx_style_merging.py", []),
    ("examples/cloud_consolidation.py", ["120"]),  # small pages/VM
]


@pytest.mark.parametrize("path,argv", EXAMPLES,
                         ids=[p for p, _ in EXAMPLES])
def test_example_runs(path, argv, capsys):
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    out = capsys.readouterr().out
    assert out  # every example reports something


def test_latency_study_importable():
    """The latency example's main() is exercised at tiny scale."""
    sys.path.insert(0, "examples")
    try:

        # Patch in a tiny scale by calling through the module's pieces.
        from repro.sim import SimulationScale, run_latency_experiment

        result = run_latency_experiment(
            "moses", modes=("baseline",),
            scale=SimulationScale(pages_per_vm=100, n_vms=2,
                                  duration_s=0.05, warmup_s=0.05),
        )
        assert "baseline" in result.summaries
    finally:
        sys.path.pop(0)
