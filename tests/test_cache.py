"""Tests for repro.cache: set-assoc cache, MESI, bus, hierarchy."""

import pytest

from repro.cache import (
    CoreCacheHierarchy,
    MESIState,
    SetAssocCache,
    SnoopBus,
)
from repro.common.config import CacheConfig, ProcessorConfig


def small_cache(sets=4, ways=2, name="T"):
    return SetAssocCache(
        CacheConfig(
            name=name, size_bytes=sets * ways * 64, ways=ways,
            round_trip_cycles=2, mshrs=4,
        )
    )


class TestMESIState:
    def test_validity(self):
        assert MESIState.MODIFIED.is_valid
        assert not MESIState.INVALID.is_valid

    def test_supply(self):
        assert MESIState.MODIFIED.can_supply
        assert MESIState.SHARED.can_supply
        assert not MESIState.INVALID.can_supply

    def test_dirty(self):
        assert MESIState.MODIFIED.is_dirty
        assert not MESIState.EXCLUSIVE.is_dirty


class TestSetAssocCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x100) is None
        cache.insert(0x100, MESIState.EXCLUSIVE)
        assert cache.lookup(0x100) is MESIState.EXCLUSIVE
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0, MESIState.SHARED)
        cache.insert(1, MESIState.SHARED)
        cache.lookup(0)  # make 1 the LRU
        victim = cache.insert(2, MESIState.SHARED)
        assert victim is not None
        assert victim[0] == 1

    def test_insert_existing_updates(self):
        cache = small_cache()
        cache.insert(5, MESIState.SHARED)
        assert cache.insert(5, MESIState.MODIFIED) is None
        assert cache.peek(5) is MESIState.MODIFIED

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(sets=1, ways=1)
        cache.insert(0, MESIState.MODIFIED)
        cache.insert(64, MESIState.SHARED)
        assert cache.stats.writebacks == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(7, MESIState.MODIFIED)
        assert cache.invalidate(7) is True  # dirty
        assert cache.peek(7) is None
        assert cache.invalidate(7) is False

    def test_invalidate_page(self):
        cache = small_cache(sets=64, ways=4)
        for line in range(64):
            cache.insert(3 * 64 + line, MESIState.SHARED)
        cache.invalidate_page(3)
        assert cache.occupancy() == 0

    def test_mshr_accounting(self):
        cache = small_cache()
        for _ in range(4):
            assert cache.acquire_mshr()
        assert not cache.acquire_mshr()
        cache.release_mshr()
        assert cache.acquire_mshr()

    def test_occupancy_by_owner(self):
        cache = small_cache(sets=8, ways=2)
        cache.insert(0, MESIState.SHARED, source="app")
        cache.insert(1, MESIState.SHARED, source="ksm")
        cache.insert(2, MESIState.SHARED, source="ksm")
        owners = cache.occupancy_by_owner()
        assert owners == {"app": 1, "ksm": 2}

    def test_miss_rate_by_source(self):
        cache = small_cache()
        cache.lookup(0, source="app")
        cache.insert(0, MESIState.SHARED, source="app")
        cache.lookup(0, source="app")
        assert cache.stats.miss_rate_for("app") == pytest.approx(0.5)

    def test_peek_does_not_touch_stats(self):
        cache = small_cache()
        cache.peek(0)
        assert cache.stats.accesses == 0


class TestSnoopBus:
    def _bus_with_two_cores(self):
        bus = SnoopBus()
        caches = [small_cache(name=f"L1-{i}") for i in range(2)]
        for i, cache in enumerate(caches):
            bus.register_private(i, [cache])
        l3 = small_cache(sets=16, ways=4, name="L3")
        bus.register_shared(l3)
        return bus, caches, l3

    def test_probe_miss(self):
        bus, _caches, _l3 = self._bus_with_two_cores()
        assert not bus.probe(0x10).hit

    def test_probe_hits_private(self):
        bus, caches, _l3 = self._bus_with_two_cores()
        caches[1].insert(0x10, MESIState.MODIFIED)
        result = bus.probe(0x10)
        assert result.hit
        assert result.supplier == "core-1"
        assert result.was_dirty

    def test_probe_hits_l3(self):
        bus, _caches, l3 = self._bus_with_two_cores()
        l3.insert(0x20, MESIState.SHARED)
        result = bus.probe(0x20)
        assert result.hit
        assert result.supplier == "L3"

    def test_probe_excludes_core(self):
        bus, caches, _l3 = self._bus_with_two_cores()
        caches[0].insert(0x10, MESIState.EXCLUSIVE)
        assert not bus.probe(0x10, exclude_core=0).hit

    def test_read_shared_demotes(self):
        bus, caches, _l3 = self._bus_with_two_cores()
        caches[1].insert(0x10, MESIState.MODIFIED)
        result = bus.read_shared(0x10, requesting_core=0)
        assert result.hit
        assert caches[1].peek(0x10) is MESIState.SHARED

    def test_read_exclusive_invalidates(self):
        bus, caches, _l3 = self._bus_with_two_cores()
        caches[1].insert(0x10, MESIState.SHARED)
        result = bus.read_exclusive(0x10, requesting_core=0)
        assert result.hit
        assert caches[1].peek(0x10) is None

    def test_invalidate_page_everywhere(self):
        bus, caches, l3 = self._bus_with_two_cores()
        caches[0].insert(5 * 64 + 1, MESIState.SHARED)
        l3.insert(5 * 64 + 2, MESIState.SHARED)
        bus.invalidate_page_everywhere(5)
        assert caches[0].peek(5 * 64 + 1) is None
        assert l3.peek(5 * 64 + 2) is None


class TestHierarchy:
    def _build(self):
        proc = ProcessorConfig(n_cores=2)
        bus = SnoopBus()
        l3 = SetAssocCache(proc.l3)
        bus.register_shared(l3)
        latencies = []

        def mem_latency(addr, is_write, source):
            latencies.append(addr)
            return 100

        h0 = CoreCacheHierarchy(0, proc, l3, bus, mem_latency)
        h1 = CoreCacheHierarchy(1, proc, l3, bus, mem_latency)
        return h0, h1, l3, latencies

    def test_first_access_goes_to_memory(self):
        h0, _h1, _l3, latencies = self._build()
        result = h0.access(0x1000)
        assert result.level == "MEM"
        assert result.latency_cycles >= 100
        assert len(latencies) == 1

    def test_second_access_hits_l1(self):
        h0, _h1, _l3, _lat = self._build()
        h0.access(0x1000)
        result = h0.access(0x1000)
        assert result.level == "L1"
        assert result.latency_cycles == 2  # Table 2 L1 round trip

    def test_cross_core_supplies_from_cache(self):
        h0, h1, _l3, latencies = self._build()
        h0.access(0x1000)
        result = h1.access(0x1000)
        assert result.level in ("L3", "MEM")
        # The line was installed in the L3 by core 0's fill.
        assert result.level == "L3"

    def test_write_invalidates_remote(self):
        h0, h1, _l3, _lat = self._build()
        h0.access(0x1000)
        h1.access(0x1000, is_write=True)
        # Core 0's copy must be gone.
        assert h0.l1.peek(0x1000) is None

    def test_no_allocate_bypasses(self):
        h0, _h1, l3, _lat = self._build()
        h0.access(0x2000, allocate=False)
        assert h0.l1.peek(0x2000) is None
        assert l3.peek(0x2000) is None

    def test_touch_page_accumulates(self):
        h0, _h1, _l3, _lat = self._build()
        total = h0.touch_page(5)
        assert total > 0
        assert h0.l1.peek(5 * 64) is not None
