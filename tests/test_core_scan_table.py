"""Tests for the Scan Table, miss sentinels, ECC hash keys, and the API."""

import numpy as np
import pytest

from repro.core import (
    INVALID_INDEX,
    PageForgeAPI,
    PageForgeEngine,
    ScanTable,
    decode_miss_sentinel,
    ecc_hash_key,
    is_miss_sentinel,
    miss_sentinel,
)
from repro.core.hashkey import ECCHashKeyGenerator, minikey_from_ecc, validate_offsets
from repro.ecc.hamming import encode_page
from repro.mem import MemoryController


class TestScanTable:
    def test_geometry(self):
        table = ScanTable(31)
        assert len(table.entries) == 31
        assert not table.pfe.valid

    def test_storage_near_260_bytes(self):
        # Table 2 reports ~260 B for 31 Other Pages + 1 PFE.
        table = ScanTable(31)
        assert 220 <= table.storage_bytes() <= 300

    def test_index_validity(self):
        table = ScanTable(4)
        assert not table.index_valid(0)  # empty entry
        table.entries[0].valid = True
        assert table.index_valid(0)
        assert not table.index_valid(-1)
        assert not table.index_valid(4)
        assert not table.index_valid(miss_sentinel(0, "left"))

    def test_clear(self):
        table = ScanTable(4)
        table.entries[2].valid = True
        table.pfe.valid = True
        table.clear()
        assert not table.entries[2].valid
        assert not table.pfe.valid

    def test_entry_access_raises_on_invalid(self):
        table = ScanTable(4)
        with pytest.raises(IndexError):
            table.entry(0)


class TestMissSentinels:
    def test_roundtrip(self):
        for index in (0, 7, 30):
            for direction in ("left", "right"):
                sentinel = miss_sentinel(index, direction)
                assert is_miss_sentinel(sentinel)
                assert decode_miss_sentinel(sentinel) == (index, direction)

    def test_sentinels_are_invalid_indices(self):
        table = ScanTable(31)
        for entry in table.entries:
            entry.valid = True
        assert not table.index_valid(miss_sentinel(30, "right"))

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            miss_sentinel(0, "up")

    def test_decode_non_sentinel(self):
        with pytest.raises(ValueError):
            decode_miss_sentinel(5)

    def test_invalid_index_not_sentinel(self):
        assert not is_miss_sentinel(INVALID_INDEX)


class TestECCHashKey:
    def test_key_is_32_bits(self, random_page):
        key = ecc_hash_key(random_page)
        assert 0 <= key < 2**32

    def test_key_concatenates_minikeys(self, random_page):
        codes = encode_page(random_page)
        offsets = (0, 16, 32, 48)
        expected = 0
        for i, line in enumerate(offsets):
            expected |= int(codes[line][0]) << (8 * i)
        assert ecc_hash_key(random_page, offsets) == expected

    def test_key_changes_with_hashed_line(self, random_page):
        base = ecc_hash_key(random_page)
        changed = random_page.copy()
        changed[0] ^= 0xFF  # inside line 0, which is hashed
        assert ecc_hash_key(changed) != base

    def test_key_blind_outside_hashed_lines(self, random_page):
        base = ecc_hash_key(random_page)
        changed = random_page.copy()
        changed[5 * 64] ^= 0xFF  # line 5 is not a hash offset
        assert ecc_hash_key(changed) == base  # the known false-positive case

    def test_offsets_validated_per_section(self):
        with pytest.raises(ValueError):
            validate_offsets((0, 1, 2, 3))  # all in section 0
        with pytest.raises(ValueError):
            validate_offsets((0, 16))  # wrong count
        assert validate_offsets((15, 31, 47, 63)) == (15, 31, 47, 63)

    def test_custom_offsets(self, random_page):
        a = ecc_hash_key(random_page, (0, 16, 32, 48))
        b = ecc_hash_key(random_page, (3, 19, 35, 51))
        # Different sample lines generally give different keys.
        assert isinstance(b, int)
        assert a != b or True  # keys may rarely coincide; type-checked

    def test_minikey_widths(self):
        code = np.array([0xAB, 0xCD, 1, 2, 3, 4, 5, 6], dtype=np.uint8)
        assert minikey_from_ecc(code, 8) == 0xAB
        assert minikey_from_ecc(code, 4) == 0xB
        assert minikey_from_ecc(code, 16) == 0xCDAB


class TestKeyGenerator:
    def test_incremental_assembly(self, random_page):
        gen = ECCHashKeyGenerator()
        codes = encode_page(random_page)
        assert not gen.ready
        for line in (0, 16, 32, 48):
            gen.observe(line, codes[line])
        assert gen.ready
        assert gen.key() == ecc_hash_key(random_page)

    def test_irrelevant_lines_ignored(self, random_page):
        gen = ECCHashKeyGenerator()
        codes = encode_page(random_page)
        assert not gen.observe(5, codes[5])
        assert gen.observe(0, codes[0])
        assert not gen.observe(0, codes[0])  # already have section 0

    def test_missing_lines(self):
        gen = ECCHashKeyGenerator()
        assert gen.missing_lines() == [0, 16, 32, 48]
        gen.observe(16, np.zeros(8, dtype=np.uint8))
        assert gen.missing_lines() == [0, 32, 48]

    def test_key_before_ready_raises(self):
        gen = ECCHashKeyGenerator()
        with pytest.raises(RuntimeError):
            gen.key()

    def test_reset(self, random_page):
        gen = ECCHashKeyGenerator()
        codes = encode_page(random_page)
        for line in (0, 16, 32, 48):
            gen.observe(line, codes[line])
        gen.reset()
        assert not gen.ready


class TestAPI:
    def _api(self, memory):
        mc = MemoryController(0, memory)
        engine = PageForgeEngine(mc)
        return PageForgeAPI(engine)

    def test_insert_ppn(self, memory):
        api = self._api(memory)
        api.insert_PPN(3, ppn=42, less=1, more=2)
        entry = api.table.entries[3]
        assert entry.valid and entry.ppn == 42
        assert (entry.less, entry.more) == (1, 2)

    def test_insert_pfe_resets_state(self, memory):
        api = self._api(memory)
        api.insert_PFE(ppn=7, last_refill=True, ptr=0)
        pfe = api.table.pfe
        assert pfe.valid and pfe.ppn == 7 and pfe.last_refill
        assert not pfe.scanned and not pfe.duplicate

    def test_update_pfe_requires_candidate(self, memory):
        api = self._api(memory)
        with pytest.raises(RuntimeError):
            api.update_PFE(last_refill=False, ptr=0)

    def test_get_pfe_info_hides_unready_hash(self, memory):
        api = self._api(memory)
        api.insert_PFE(ppn=1)
        info = api.get_PFE_info()
        assert info.hash_key is None
        assert not info.hash_ready

    def test_update_ecc_offset(self, memory):
        api = self._api(memory)
        api.update_ECC_offset((3, 19, 35, 51))
        assert api.engine.keygen.line_offsets == (3, 19, 35, 51)

    def test_trigger_without_pfe_raises(self, memory):
        api = self._api(memory)
        with pytest.raises(RuntimeError):
            api.trigger()
