"""Property: failover is crash-equivalent at *any* primary kill point.

The replicated tier's contract is PR 4's crash-equivalence guarantee
lifted over node death: kill the primary at any journaled LSN — or in
the middle of publishing a checkpoint — and the promoted replica's
completed run fingerprints identically to the uninterrupted reference.
Hypothesis drives the kill point; the reference fingerprint is computed
once per module and every failover run must land on it.
"""

import dataclasses

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.faults.plan import FaultPlan  # noqa: E402
from repro.recovery import (  # noqa: E402
    RecoverableRun,
    ReplicationSession,
    RunSpec,
)

pytestmark = pytest.mark.slow

_SPEC = RunSpec(
    app="moses", mode="ksm", seed=3, pages_per_vm=30, n_vms=3,
    intervals=4, checkpoint_every=2, plan=FaultPlan(seed=3),
)

_failover_settings = settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted run every failover must be equivalent to."""
    workdir = tmp_path_factory.mktemp("reference")
    run = RecoverableRun(_SPEC.without_crashes(), workdir, attempt=0)
    result = run.run()
    assert result["validation"]["auditor_clean"]
    assert result["validation"]["zero_false_merges"]
    return result


@given(kill_lsn=st.integers(min_value=1, max_value=40))
@_failover_settings
def test_primary_kill_at_any_lsn_is_equivalent(
    tmp_path_factory, reference, kill_lsn
):
    workdir = tmp_path_factory.mktemp(f"kill-{kill_lsn}")
    session = ReplicationSession(_SPEC, workdir, n_replicas=2)
    out = session.run(kill_at_lsns=[kill_lsn])
    assert out["failovers"] >= 1
    assert out["result"]["fingerprint"] == reference["fingerprint"]
    assert out["result"]["validation"]["auditor_clean"]
    assert out["result"]["validation"]["zero_false_merges"]


@given(
    step=st.sampled_from([2, 4]),
    phase=st.sampled_from(["published", "streamed"]),
)
@_failover_settings
def test_kill_during_checkpoint_publish_is_equivalent(
    tmp_path_factory, reference, step, phase
):
    workdir = tmp_path_factory.mktemp(f"ckpt-{step}-{phase}")
    session = ReplicationSession(_SPEC, workdir, n_replicas=2)
    out = session.run(kill_at_checkpoint=(step, phase))
    assert out["failovers"] == 1
    assert out["result"]["fingerprint"] == reference["fingerprint"]


@given(
    kills=st.lists(
        st.integers(min_value=1, max_value=40),
        min_size=2, max_size=3, unique=True,
    )
)
@_failover_settings
def test_cascading_failovers_stay_equivalent(
    tmp_path_factory, reference, kills
):
    """Every replica can die in turn; the last node finishes the run."""
    workdir = tmp_path_factory.mktemp("cascade")
    session = ReplicationSession(_SPEC, workdir, n_replicas=2)
    out = session.run(kill_at_lsns=sorted(kills), max_attempts=8)
    assert out["failovers"] == len(kills)
    assert out["result"]["fingerprint"] == reference["fingerprint"]


@given(
    kill_lsn=st.integers(min_value=5, max_value=35),
    net_rate=st.sampled_from([0.05, 0.15, 0.30]),
)
@_failover_settings
def test_kill_under_lossy_network_is_equivalent(
    tmp_path_factory, reference, kill_lsn, net_rate
):
    """Transport chaos shrinks replica state but never forks history."""
    plan = FaultPlan.lossy_network(
        net_rate, seed=3, partition_prob=0.02, partition_frames=6
    )
    spec = dataclasses.replace(_SPEC, plan=plan)
    workdir = tmp_path_factory.mktemp("lossy")
    session = ReplicationSession(spec, workdir, n_replicas=2)
    out = session.run(kill_at_lsns=[kill_lsn])
    assert out["result"]["fingerprint"] == reference["fingerprint"]


def test_crash_after_ops_plan_field_triggers_failover(tmp_path, reference):
    """The plan's own kill switch works through the session too."""
    plan = dataclasses.replace(_SPEC.plan, crash_after_ops=20)
    spec = dataclasses.replace(_SPEC, plan=plan)
    session = ReplicationSession(spec, tmp_path, n_replicas=2)
    out = session.run(check_equivalence=True)
    assert out["failovers"] == 1
    assert out["equivalence"]["equivalent"]
    assert out["result"]["fingerprint"] == reference["fingerprint"]
