"""Tests for the CLI and the result exporters."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    hash_study_to_rows,
    latency_to_rows,
    rows_to_csv,
    rows_to_json,
    savings_to_rows,
)
from repro.cli import build_parser, main
from repro.sim.runner import (
    ExperimentResult,
    HashKeyStudyResult,
    LatencySummary,
    MemorySavingsResult,
)


def _savings():
    return MemorySavingsResult(
        app_name="moses", pages_before=100, pages_after=50,
        before_by_category={}, after_by_category={"zero": 1},
        merges=50, engine="ksm",
    )


def _experiment():
    result = ExperimentResult(app_name="moses")
    for mode, mean in (("baseline", 1e-3), ("ksm", 1.5e-3)):
        result.summaries[mode] = LatencySummary(
            app_name="moses", mode=mode, mean_sojourn_s=mean,
            p95_sojourn_s=mean * 3, queries=10, kernel_share_avg=0.05,
            kernel_share_max=0.2, l3_miss_rate=0.3,
            bandwidth_peak_gbps=4.0, bandwidth_breakdown={"app": 4.0},
        )
    return result


class TestExporters:
    def test_savings_rows(self):
        rows = savings_to_rows([_savings()])
        assert rows[0]["app"] == "moses"
        assert rows[0]["savings_frac"] == pytest.approx(0.5)

    def test_latency_rows(self):
        rows = latency_to_rows([_experiment()])
        assert len(rows) == 2
        ksm = next(r for r in rows if r["mode"] == "ksm")
        assert ksm["norm_mean"] == pytest.approx(1.5)

    def test_hash_rows(self):
        study = HashKeyStudyResult(
            app_name="moses", comparisons=100, jhash_matches=90,
            jhash_mismatches=10, ecc_matches=95, ecc_mismatches=5,
            jhash_false_positives=0, ecc_false_positives=5,
        )
        rows = hash_study_to_rows([study])
        assert rows[0]["extra_ecc_fp_frac"] == pytest.approx(0.05)

    def test_csv_roundtrip(self, tmp_path):
        rows = savings_to_rows([_savings()])
        path = tmp_path / "out.csv"
        text = rows_to_csv(rows, path)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["app"] == "moses"
        assert path.read_text() == text

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_json_roundtrip(self, tmp_path):
        rows = latency_to_rows([_experiment()])
        path = tmp_path / "out.json"
        text = rows_to_json(rows, path)
        parsed = json.loads(text)
        assert parsed[0]["app"] == "moses"
        assert json.loads(path.read_text()) == parsed

    def test_json_handles_dataclasses(self):
        text = rows_to_json(_savings())
        assert json.loads(text)["app_name"] == "moses"


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("savings", "hashkeys", "latency", "demo",
                        "config"):
            args = parser.parse_args(
                [command] if command in ("config", "demo")
                else [command, "--apps", "moses"]
            )
            assert args.command == command

    def test_config_command(self, capsys):
        assert main(["config"]) == 0
        assert "10 OoO cores" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        assert "merges" in capsys.readouterr().out

    def test_savings_command_small(self, capsys, tmp_path):
        csv_path = tmp_path / "savings.csv"
        code = main([
            "savings", "--apps", "moses", "--pages-per-vm", "60",
            "--vms", "3", "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert csv_path.exists()
        rows = list(csv.DictReader(csv_path.open()))
        assert {r["engine"] for r in rows} == {"ksm", "pageforge"}

    def test_hashkeys_command_small(self, capsys):
        code = main([
            "hashkeys", "--apps", "moses", "--pages-per-vm", "60",
            "--vms", "2", "--passes", "3",
        ])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_latency_command_small(self, capsys, tmp_path):
        json_path = tmp_path / "latency.json"
        code = main([
            "latency", "--apps", "moses", "--pages-per-vm", "100",
            "--vms", "2", "--duration", "0.05", "--warmup", "0.05",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Table 5" in out
        assert json.loads(json_path.read_text())
