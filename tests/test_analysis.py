"""Tests for the analysis/report renderers."""

import pytest

from repro.analysis import (
    format_fig7_memory_savings,
    format_fig8_hash_keys,
    format_fig9_mean_latency,
    format_fig10_tail_latency,
    format_fig11_bandwidth,
    format_table2_configuration,
    format_table4_ksm_characterization,
    format_table5_pageforge,
    geometric_mean,
)
from repro.common import default_machine_config
from repro.core.power import PageForgePowerModel
from repro.sim.runner import (
    ExperimentResult,
    HashKeyStudyResult,
    LatencySummary,
    MemorySavingsResult,
)


def _savings(app="moses"):
    return MemorySavingsResult(
        app_name=app, pages_before=1000, pages_after=520,
        before_by_category={"unmergeable": 450, "zero": 50,
                            "mergeable": 500},
        after_by_category={"unmergeable": 450, "zero": 1, "mergeable": 69},
        merges=480, engine="pageforge",
    )


def _summary(mode, mean, p95, bw=2.0):
    return LatencySummary(
        app_name="moses", mode=mode, mean_sojourn_s=mean,
        p95_sojourn_s=p95, queries=100, kernel_share_avg=0.06,
        kernel_share_max=0.3, l3_miss_rate=0.35,
        bandwidth_peak_gbps=bw, bandwidth_breakdown={"app": bw},
        ksm_compare_share=0.5, ksm_hash_share=0.15,
        pf_mean_table_cycles=7000.0, pf_std_table_cycles=1000.0,
    )


def _experiment():
    result = ExperimentResult(app_name="moses")
    result.summaries["baseline"] = _summary("baseline", 1e-3, 3e-3, 2.0)
    result.summaries["ksm"] = _summary("ksm", 1.7e-3, 7e-3, 10.0)
    result.summaries["pageforge"] = _summary("pageforge", 1.1e-3,
                                             3.3e-3, 12.0)
    return result


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_skips_nonpositive(self):
        assert geometric_mean([0.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestExperimentResult:
    def test_normalisation(self):
        result = _experiment()
        assert result.normalized_mean("ksm") == pytest.approx(1.7)
        assert result.normalized_p95("pageforge") == pytest.approx(1.1)


class TestRenderers:
    def test_fig7(self):
        text = format_fig7_memory_savings([_savings()])
        assert "Figure 7" in text
        assert "moses" in text
        assert "48%" in text  # the paper reference

    def test_fig8(self):
        study = HashKeyStudyResult(
            app_name="moses", comparisons=1000, jhash_matches=950,
            jhash_mismatches=50, ecc_matches=987, ecc_mismatches=13,
            jhash_false_positives=2, ecc_false_positives=39,
        )
        text = format_fig8_hash_keys([study])
        assert "Figure 8" in text
        assert "3.7%" in text
        assert study.extra_ecc_false_positive_frac == pytest.approx(0.037)

    def test_fig9_and_10(self):
        result = _experiment()
        fig9 = format_fig9_mean_latency([result])
        fig10 = format_fig10_tail_latency([result])
        assert "1.70" in fig9
        assert "2.33" in fig10  # 7/3
        assert "1.68x" in fig9 and "2.36x" in fig10

    def test_fig11(self):
        text = format_fig11_bandwidth([_experiment()])
        assert "Figure 11" in text
        assert "10.00" in text and "12.00" in text

    def test_table2(self):
        text = format_table2_configuration(default_machine_config())
        assert "10 OoO cores" in text
        assert "32 MB" in text
        assert "512 MB" in text

    def test_table4(self):
        text = format_table4_ksm_characterization([_experiment()])
        assert "Table 4" in text
        assert "6.0%" in text  # kernel_share_avg
        assert "50.0%" in text  # compare share

    def test_table5(self):
        text = format_table5_pageforge([_experiment()],
                                       PageForgePowerModel())
        assert "Table 5" in text
        assert "7,000" in text
        assert "12,000" in text
        assert "mm^2" in text
