"""Server lifecycle: graceful drain, SIGTERM, breaker trip + recovery.

These tests exercise the full process-level contract the front-end
makes to its load balancer and its operator:

* readiness flips false *before* the listen socket closes, so routing
  stops while in-flight work still completes;
* a drain finishes every admitted request, sheds everything new, and
  publishes the final metrics snapshot atomically (no ``*.tmp`` debris);
* injected backend chaos (stalls, errors) trips the circuit breaker,
  the breaker sheds during cooldown, and a half-open probe recovers —
  all without ever corrupting simulator state (the auditor stays
  clean throughout).
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.serve import (
    ChaosProfile,
    MergeServer,
    ServeChaos,
    ServeConfig,
)
from repro.verify.invariants import InvariantAuditor

pytestmark = pytest.mark.slow


def request(port, method, path, body=None, headers=None, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        h = {"Content-Type": "application/json"}
        h.update(headers or {})
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=h)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


def start_server(tmp_path=None, **overrides):
    config = ServeConfig(
        port=0, n_vms=1, pages_per_vm=16,
        metrics_out=(
            str(tmp_path / "final_metrics.json") if tmp_path else None
        ),
        **overrides,
    )
    auditor = InvariantAuditor()
    return MergeServer(config, auditor=auditor).start(), auditor


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_sheds_new(self, tmp_path):
        # Every op stalls ~0.4s: a predictable in-flight window to
        # drain into.
        server, auditor = start_server(
            tmp_path,
            chaos=ChaosProfile(seed=3, stall_prob=1.0, stall_s=0.4),
            drain_timeout_s=10.0,
        )
        port = server.port
        inflight = {}

        def slow_request():
            inflight["outcome"] = request(
                port, "POST", "/v1/workload", {"kind": "read"},
            )

        t = threading.Thread(target=slow_request, daemon=True)
        t.start()
        # Wait until the request is actually admitted and in flight.
        for _ in range(100):
            if server.admission.stats.inflight > 0:
                break
            time.sleep(0.01)
        else:
            pytest.fail("request never went in flight")

        server.begin_drain()

        # Readiness is already off while the socket still accepts:
        # this very connection proves the socket is open.
        status, data = request(port, "GET", "/readyz")
        assert status == 503 and data["status"] == "draining"

        # New data-plane work is shed with the drain reason.
        status, data = request(
            port, "POST", "/v1/workload", {"kind": "read"},
        )
        assert status == 503 and data["reason"] == "draining"

        # The in-flight request still completed (it was admitted
        # before the drain began).
        t.join(timeout=10)
        assert inflight["outcome"][0] == 200

        assert server._drained.wait(10)
        assert server.admission.stats.inflight == 0
        assert server.admission.stats.balanced
        assert auditor.clean

        # Final metrics were published atomically: the real file
        # exists, no temp debris does.
        final = tmp_path / "final_metrics.json"
        assert final.exists()
        payload = json.loads(final.read_text())
        assert payload["final"] is True
        assert payload["metrics"]["admission/balanced"]
        leftovers = [p for p in tmp_path.iterdir() if p != final]
        assert leftovers == []

    def test_drain_is_idempotent_and_socket_closes_last(self, tmp_path):
        server, _ = start_server(tmp_path)
        port = server.port
        assert request(port, "GET", "/readyz")[0] == 200
        assert server.drain(timeout=10)
        server.begin_drain()  # second call is a no-op
        assert server._drained.is_set()
        # The listen socket is now closed for real.
        with pytest.raises(OSError):
            request(port, "GET", "/healthz", timeout=1)

    def test_sigterm_triggers_drain(self, tmp_path):
        server, auditor = start_server(tmp_path)
        server.install_signal_handlers()
        port = server.port
        assert request(port, "GET", "/healthz")[0] == 200

        def fire():
            time.sleep(0.1)
            os.kill(os.getpid(), signal.SIGTERM)

        threading.Thread(target=fire, daemon=True).start()
        # The foreground loop a CLI `repro serve` would sit in: the
        # signal lands on the main thread, begins the drain, and the
        # wait below releases once the drain completes.
        server.serve_until_drained()
        assert server._drained.is_set()
        assert not server.ready
        assert (tmp_path / "final_metrics.json").exists()
        assert auditor.clean
        # Restore default handlers for whatever test runs next.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)


class TestBreakerLifecycle:
    def test_stalled_backend_trips_breaker_then_recovers(self):
        # Chaos stalls every op for longer than the request deadline:
        # the ops "succeed" but overrun their budgets, which must trip
        # the breaker exactly like hard errors do.
        server, auditor = start_server(
            None,
            chaos=ChaosProfile(seed=11, stall_prob=1.0, stall_s=0.4),
            default_deadline_s=0.15,
            breaker_threshold=2,
            breaker_cooldown_s=0.3,
        )
        port = server.port
        try:
            # Two stalled requests: both come back 504 (completed too
            # late), and the second one trips the breaker.
            for _ in range(2):
                status, data = request(
                    port, "POST", "/v1/workload", {"kind": "read"},
                )
                assert status == 504
            assert server.app.breaker.trips == 1

            # During cooldown the fast path sheds without touching the
            # engine: 503 breaker_open with a Retry-After.
            status, data = request(
                port, "POST", "/v1/workload", {"kind": "read"},
            )
            assert status == 503 and data["reason"] == "breaker_open"

            # The backend "recovers": swap in an inactive chaos
            # profile, wait out the cooldown, and the next request is
            # the half-open probe that closes the breaker.
            server.app.chaos = ServeChaos(ChaosProfile())
            time.sleep(0.35)
            status, data = request(
                port, "POST", "/v1/workload", {"kind": "read"},
            )
            assert status == 200
            assert server.app.breaker.recoveries == 1
            assert server.app.breaker.state == "closed"

            # Chaos never corrupted the world and the ledger balances:
            # 2 failed (late), 1 shed (breaker), 1 accepted.
            stats = server.admission.stats
            assert stats.balanced
            assert stats.failed_deadline == 2
            assert stats.shed_breaker == 1
            assert stats.accepted_deadline_violations == 0
            assert auditor.clean
        finally:
            server.close()

    def test_injected_errors_trip_breaker(self):
        server, auditor = start_server(
            None,
            chaos=ChaosProfile(seed=5, error_prob=1.0),
            breaker_threshold=3,
            breaker_cooldown_s=60.0,
        )
        port = server.port
        try:
            for _ in range(3):
                status, data = request(
                    port, "POST", "/v1/workload", {"kind": "read"},
                )
                assert status == 500
                assert data["error"] == "InjectedBackendError"
            assert server.app.breaker.state == "open"
            status, data = request(
                port, "POST", "/v1/workload", {"kind": "read"},
            )
            assert status == 503 and data["reason"] == "breaker_open"
            assert server.admission.stats.balanced
            assert auditor.clean
        finally:
            server.close()
