"""Tests for the runtime invariant auditor."""

import numpy as np
import pytest

from repro.common.config import TAILBENCH_APPS
from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_BYTES
from repro.core.scan_table import ScanTable, miss_sentinel
from repro.ksm import KSMDaemon
from repro.ksm.rbtree import ContentRBTree, RBNode, RED
from repro.sim.system import MODES, ServerSystem, SimulationScale
from repro.verify.invariants import InvariantAuditor, InvariantViolation
from repro.virt.hypervisor import MergeRollback


class TestMergeAuditing:
    def test_clean_merge_passes_all_checks(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        auditor = InvariantAuditor(strict=True)
        auditor.attach_hypervisor(hypervisor)
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        assert auditor.clean
        for kind in ("merge-content", "merge-refcount",
                     "merge-loser-refcount", "merge-frame-accounting",
                     "merge-mapping-conservation", "merge-cow-protection"):
            assert auditor.checks[kind] == 1, kind

    def test_merge_rollback_passes_through(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        auditor = InvariantAuditor(strict=True)
        auditor.attach_hypervisor(hypervisor)
        with pytest.raises(MergeRollback):
            hypervisor.merge_pages(vms[0], 1, vms[1], 1)  # unique pages
        assert auditor.clean
        assert auditor.checks["merge-rollback-observed"] == 1

    def test_corrupted_merge_content_detected(self, two_vm_setup):
        """A merge implementation that scribbles on the surviving frame
        is caught by the content-equality check."""
        hypervisor, vms = two_vm_setup
        real_merge = hypervisor.merge_pages

        def scribbling_merge(*args, **kwargs):
            ppn = real_merge(*args, **kwargs)
            hypervisor.memory.frame(ppn).data[0] ^= 0xFF  # the bug
            return ppn

        hypervisor.merge_pages = scribbling_merge
        auditor = InvariantAuditor(strict=True)
        auditor.attach_hypervisor(hypervisor)
        with pytest.raises(InvariantViolation) as excinfo:
            hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        assert excinfo.value.kind == "merge-content"

    def test_refcount_leak_detected(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        real_merge = hypervisor.merge_pages

        def leaking_merge(winner_vm, winner_gpn, loser_vm, loser_gpn,
                          verify=True):
            ppn = real_merge(winner_vm, winner_gpn, loser_vm, loser_gpn,
                             verify=verify)
            hypervisor.memory.incref(ppn)  # the bug: an extra reference
            return ppn

        hypervisor.merge_pages = leaking_merge
        auditor = InvariantAuditor(strict=False)
        auditor.attach_hypervisor(hypervisor)
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        kinds = {v.kind for v in auditor.violations}
        assert "merge-refcount" in kinds

    def test_cow_break_content_preserved(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        auditor = InvariantAuditor(strict=True)
        auditor.attach_hypervisor(hypervisor)
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        hypervisor.guest_write(vms[1], 0, 10, [0x42])
        assert auditor.clean
        assert auditor.checks["cow-break-content"] >= 1
        assert auditor.checks["cow-break-refcount"] >= 1

    def test_unmerge_audited(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        auditor = InvariantAuditor(strict=True)
        auditor.attach_hypervisor(hypervisor)
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        hypervisor.unmerge_page(vms[1], 0)
        assert auditor.clean
        assert auditor.checks["unmerge-content"] == 1
        assert auditor.checks["unmerge-flag"] == 1

    def test_detach_restores_methods(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        auditor = InvariantAuditor()
        auditor.attach_hypervisor(hypervisor)
        assert "merge_pages" in hypervisor.__dict__  # shadowed by wrapper
        auditor.detach()
        # Back to plain class-method dispatch, nothing shadowed.
        for name in ("merge_pages", "break_cow", "unmerge_page"):
            assert name not in hypervisor.__dict__


class TestStructuralChecks:
    def test_frame_accounting_detects_rmap_desync(self, two_vm_setup):
        hypervisor, _vms = two_vm_setup
        auditor = InvariantAuditor(strict=False)
        auditor.audit_frames(hypervisor)
        assert auditor.clean
        # Desynchronize the reverse map and re-audit.
        ppn = next(iter(hypervisor._rmap))
        hypervisor._rmap[ppn].add((99, 99))
        auditor.audit_frames(hypervisor)
        assert not auditor.clean
        assert auditor.violations[0].kind == "frame-accounting"

    def test_shared_frame_without_protection_detected(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        auditor = InvariantAuditor(strict=False)
        shared_ppn = vms[0].mapping(0).ppn
        hypervisor._cow_ppns.discard(shared_ppn)  # the bug
        auditor.audit_frames(hypervisor)
        kinds = {v.kind for v in auditor.violations}
        assert "shared-unprotected" in kinds

    def test_rbtree_red_red_detected(self):
        tree = ContentRBTree("stable")
        pages = [np.full(PAGE_BYTES, fill, dtype=np.uint8)
                 for fill in (10, 20, 30)]
        for page in pages:
            tree.insert(RBNode(lambda p=page: p, payload=("stable", 0)))
        auditor = InvariantAuditor(strict=False)
        auditor._check_rbtree(tree, check_order=False)
        assert auditor.clean
        # Paint a red-red edge.
        tree.root.color = RED
        auditor._check_rbtree(tree, check_order=False)
        assert not auditor.clean

    def test_rbtree_ordering_violation_detected(self):
        tree = ContentRBTree("stable")
        backing = [np.full(PAGE_BYTES, fill, dtype=np.uint8)
                   for fill in (10, 20, 30)]
        nodes = [RBNode(lambda p=page: p, payload=("stable", 0))
                 for page in backing]
        for node in nodes:
            tree.insert(node)
        auditor = InvariantAuditor(strict=False)
        auditor._check_rbtree(tree)
        assert auditor.clean
        backing[0][:] = 99  # now larger than its in-order successors
        auditor._check_rbtree(tree)
        kinds = {v.kind for v in auditor.violations}
        assert "rbtree-stable" in kinds

    def test_scan_table_well_formed_passes(self):
        table = ScanTable(n_entries=4)
        table.pfe.valid = True
        table.pfe.scanned = True
        table.pfe.ptr = miss_sentinel(2, "left")
        for i in range(3):
            entry = table.entries[i]
            entry.valid = True
            entry.ppn = i
            entry.less = miss_sentinel(i, "left")
            entry.more = miss_sentinel(i, "right")
        auditor = InvariantAuditor(strict=False)
        auditor.on_table_processed(table)
        assert auditor.clean
        assert auditor.checks["scan-table"] == 1

    def test_scan_table_rotten_pointer_detected(self):
        table = ScanTable(n_entries=4)
        table.pfe.valid = True
        table.pfe.scanned = True
        entry = table.entries[0]
        entry.valid = True
        entry.less = 77  # out of range, not a sentinel: bit rot
        auditor = InvariantAuditor(strict=False)
        auditor.on_table_processed(table)
        assert not auditor.clean
        assert auditor.violations[0].kind == "scan-table"

    def test_scan_table_duplicate_needs_valid_ptr(self):
        table = ScanTable(n_entries=4)
        table.pfe.valid = True
        table.pfe.scanned = True
        table.pfe.duplicate = True
        table.pfe.ptr = 3  # entry 3 is not valid
        auditor = InvariantAuditor(strict=False)
        auditor.on_table_processed(table)
        assert not auditor.clean


class TestDaemonIntegration:
    def test_audited_daemon_run_is_clean(self):
        app = TAILBENCH_APPS["moses"]
        from repro.mem import PhysicalMemory
        from repro.virt import Hypervisor
        from repro.workloads.memimage import (
            MemoryImageProfile,
            build_vm_images,
        )

        rng = DeterministicRNG(3, "audited-daemon")
        hypervisor = Hypervisor(physical_memory=PhysicalMemory(64 << 20))
        profile = MemoryImageProfile.for_app(app, 60)
        build_vm_images(hypervisor, profile, 2, rng)
        daemon = KSMDaemon(hypervisor)
        auditor = InvariantAuditor(strict=True)
        auditor.attach_daemon(daemon)
        daemon.run_to_steady_state(max_passes=6)
        assert auditor.clean
        assert auditor.checks["merge-content"] > 0
        assert auditor.checks["rbtree-stable"] > 0
        assert auditor.checks["frame-accounting"] > 0

    @pytest.mark.parametrize("mode", MODES)
    def test_acceptance_server_system_zero_violations(self, mode):
        """Acceptance criterion: zero violations across a full
        ServerSystem run in every mode."""
        scale = SimulationScale(
            pages_per_vm=60, n_vms=2, duration_s=0.04, warmup_s=0.04
        )
        auditor = InvariantAuditor(strict=True)
        system = ServerSystem(
            TAILBENCH_APPS["moses"], mode=mode, scale=scale, seed=11,
            auditor=auditor,
        )
        system.run()
        assert auditor.clean, auditor.summary()
        if mode != "baseline":
            assert auditor.total_checks > 0
        if mode == "pageforge":
            assert auditor.checks["scan-table"] > 0

    def test_recording_mode_keeps_counting(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        auditor = InvariantAuditor(strict=False, max_recorded=1)
        auditor._fail("demo", "first")
        auditor._fail("demo", "second")
        assert len(auditor.violations) == 1  # capped
        assert auditor.checks["demo"] == 2
        with pytest.raises(InvariantViolation):
            auditor.assert_clean()
