"""Unit and endpoint tests for the overload-robust serving tier."""

import http.client
import json
import threading
from dataclasses import replace

import pytest

from repro.serve import (
    AdmissionController,
    BreakerOpen,
    ChaosProfile,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    InjectedBackendError,
    MergeServer,
    ServeChaos,
    ServeConfig,
    ShedReason,
    TokenBucket,
)
from repro.serve.deadline import DEADLINE_HEADER
from repro.serve.server import TENANT_HEADER
from repro.sim.metrics import summarize


class FakeClock:
    """Injectable monotonic clock so no test sleeps."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# Deadlines -----------------------------------------------------------------------


class TestDeadline:
    def test_missing_header_gets_default(self):
        clock = FakeClock()
        d = Deadline.from_header(None, 1.5, 30.0, clock=clock)
        assert d.budget_s == 1.5

    def test_header_clamped_to_max(self):
        d = Deadline.from_header("99000", 1.0, 30.0, clock=FakeClock())
        assert d.budget_s == 30.0

    def test_malformed_header_raises(self):
        with pytest.raises(ValueError):
            Deadline.from_header("soon", 1.0, 30.0, clock=FakeClock())
        with pytest.raises(ValueError):
            Deadline.from_header("-5", 1.0, 30.0, clock=FakeClock())
        with pytest.raises(ValueError):
            Deadline.from_header("0", 1.0, 30.0, clock=FakeClock())

    def test_expiry_and_check(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert not d.expired
        clock.advance(1.0)
        assert d.remaining() == pytest.approx(1.0)
        d.check("midway")  # no raise
        clock.advance(1.5)
        assert d.expired
        with pytest.raises(DeadlineExceeded, match="midway"):
            d.check("midway")

    def test_header_value_propagates_remaining(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        clock.advance(0.4)
        assert int(d.header_value()) == pytest.approx(600, abs=2)
        clock.advance(10.0)
        assert d.header_value() == "1"  # floor, never zero or negative


# Token bucket --------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.seconds_until() == pytest.approx(0.1)
        clock.advance(0.2)
        assert bucket.try_take()

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


# Admission -----------------------------------------------------------------------


def make_admission(clock, **overrides):
    config = replace(ServeConfig(), **overrides)
    return AdmissionController(config, clock=clock)


class TestAdmission:
    def test_exact_accounting_over_mixed_outcomes(self):
        clock = FakeClock()
        adm = make_admission(clock, queue_depth=2)
        assert adm.admit("a") == (True, None, None)
        assert adm.admit("a") == (True, None, None)
        admitted, reason, retry = adm.admit("a")  # window full
        assert not admitted and reason == ShedReason.QUEUE_FULL
        assert retry > 0
        adm.release(0.01, "ok")
        adm.release(0.02, "error")
        s = adm.stats
        assert (s.offered, s.accepted, s.failed, s.shed) == (3, 1, 1, 1)
        assert s.balanced
        assert s.inflight == 0 and s.inflight_peak == 2

    def test_ewma_overload_shedding_arms_past_soft_limit(self):
        clock = FakeClock()
        adm = make_admission(clock, queue_depth=4, slo_latency_s=0.1,
                             ewma_alpha=1.0, soft_queue_frac=0.5)
        # One slow request pushes the EWMA over the SLO...
        adm.admit()
        adm.release(1.0, "ok")
        # ...but an idle server still admits (below the soft limit).
        assert adm.admit()[0]
        assert adm.admit()[0]
        # At the soft limit with a hot EWMA, shed.
        admitted, reason, _ = adm.admit()
        assert not admitted and reason == ShedReason.OVERLOAD
        adm.release(0.01, "ok")
        adm.release(0.01, "ok")
        assert adm.stats.balanced and adm.stats.inflight == 0

    def test_draining_sheds_everything_new(self):
        adm = make_admission(FakeClock())
        adm.begin_drain()
        admitted, reason, _ = adm.admit()
        assert not admitted and reason == ShedReason.DRAINING
        assert adm.stats.balanced

    def test_tenant_rate_limiting_isolated_per_tenant(self):
        clock = FakeClock()
        adm = make_admission(clock, tenant_rate_qps=10.0, tenant_burst=1.0)
        assert adm.admit("a")[0]
        admitted, reason, retry = adm.admit("a")
        assert not admitted and reason == ShedReason.RATE_LIMITED
        assert retry == pytest.approx(0.1)
        assert adm.admit("b")[0]  # tenant b has its own bucket
        assert adm.stats.shed_rate_limited == 1

    def test_shed_admitted_rebalances_ledger(self):
        adm = make_admission(FakeClock())
        adm.admit()
        adm.shed_admitted(ShedReason.BREAKER_OPEN)
        s = adm.stats
        assert s.shed_breaker == 1 and s.inflight == 0 and s.balanced

    def test_wait_idle_blocks_until_release(self):
        adm = make_admission(FakeClock())
        adm.admit()
        done = threading.Event()

        def drain():
            adm.wait_idle(timeout=5.0)
            done.set()

        t = threading.Thread(target=drain, daemon=True)
        t.start()
        assert not done.wait(0.05)
        adm.release(0.01, "ok")
        assert done.wait(2.0)


# Circuit breaker -----------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, cooldown_s=1.0, clock=clock)
        for _ in range(2):
            b.acquire()
            b.record_failure()
        b.acquire()
        b.record_success()  # resets the consecutive count
        for _ in range(2):
            b.acquire()
            b.record_failure()
        assert b.state == CircuitBreaker.CLOSED
        b.acquire()
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN and b.trips == 1

    def test_open_rejects_then_halfopen_recovers(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=2.0, clock=clock)
        b.acquire()
        b.record_failure()
        with pytest.raises(BreakerOpen) as exc_info:
            b.acquire()
        assert exc_info.value.retry_after_s == pytest.approx(2.0)
        clock.advance(2.5)
        b.acquire()  # the half-open probe
        assert b.state == CircuitBreaker.HALF_OPEN
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED and b.recoveries == 1

    def test_halfopen_failure_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
        b.acquire()
        b.record_failure()
        clock.advance(1.5)
        b.acquire()
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN and b.trips == 2

    def test_halfopen_probe_slots_are_bounded(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=1.0,
                           halfopen_probes=1, clock=clock)
        b.acquire()
        b.record_failure()
        clock.advance(1.5)
        b.acquire()
        with pytest.raises(BreakerOpen):
            b.acquire()  # second concurrent probe refused


# Chaos ---------------------------------------------------------------------------


class TestServeChaos:
    def test_deterministic_schedule(self):
        profile = ChaosProfile(seed=7, stall_prob=0.2, error_prob=0.3)

        def run_schedule():
            chaos = ServeChaos(profile, sleeper=lambda s: None)
            outcomes = []
            for _ in range(50):
                try:
                    chaos.before_op("op")
                    outcomes.append("clean-or-stall")
                except InjectedBackendError:
                    outcomes.append("error")
            return outcomes, chaos.stats.stalls, chaos.stats.errors

        assert run_schedule() == run_schedule()

    def test_inactive_profile_never_draws(self):
        chaos = ServeChaos(ChaosProfile(), sleeper=lambda s: None)
        for _ in range(10):
            chaos.before_op("op")
        assert chaos.stats.stalls == 0 and chaos.stats.errors == 0

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ChaosProfile(stall_prob=0.8, error_prob=0.5)


# summarize percentiles -----------------------------------------------------------


class TestSummarizePercentiles:
    def test_default_shape_unchanged(self):
        out = summarize([1.0, 2.0, 3.0])
        assert set(out) == {"count", "mean", "min", "max", "p95"}

    def test_requested_percentiles(self):
        out = summarize(range(1000), percentiles=(50, 99, 99.9))
        assert out["p50"] == 500
        assert out["p99"] == 990
        assert out["p99.9"] == 999

    def test_empty_yields_zeroed_keys(self):
        out = summarize([], percentiles=(50, 99.9))
        assert out["count"] == 0 and out["p99.9"] == 0.0


# HTTP endpoints ------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(port=0, n_vms=2, pages_per_vm=40)
    srv = MergeServer(config).start()
    yield srv
    srv.close()


def request(srv, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=10)
    h = {"Content-Type": "application/json"}
    h.update(headers or {})
    payload = json.dumps(body) if isinstance(body, dict) else body
    conn.request(method, path, body=payload, headers=h)
    response = conn.getresponse()
    data = json.loads(response.read().decode("utf-8"))
    conn.close()
    return response.status, data, dict(response.getheaders())


class TestEndpoints:
    def test_health_and_readiness(self, server):
        assert request(server, "GET", "/healthz")[0] == 200
        status, data, _ = request(server, "GET", "/readyz")
        assert status == 200 and data["status"] == "ready"

    def test_unknown_paths_404(self, server):
        assert request(server, "GET", "/nope")[0] == 404
        assert request(server, "POST", "/v1/nope")[0] == 404

    def test_workload_scan_and_read(self, server):
        status, data, _ = request(
            server, "POST", "/v1/workload",
            {"kind": "scan", "pages": 50},
        )
        assert status == 200
        assert data["result"]["pages_scanned"] == 50
        assert data["deadline_remaining_ms"] > 0
        status, data, _ = request(
            server, "POST", "/v1/workload", {"kind": "read"},
        )
        assert status == 200 and len(data["result"]["head"]) == 16

    def test_bad_json_body_is_400_before_admission(self, server):
        before = server.admission.stats.offered
        status, data, _ = request(
            server, "POST", "/v1/workload", "{not json",
        )
        assert status == 400
        assert server.admission.stats.offered == before

    def test_bad_deadline_is_400_before_admission(self, server):
        before = server.admission.stats.offered
        status, _, _ = request(
            server, "POST", "/v1/workload", {"kind": "read"},
            headers={DEADLINE_HEADER: "yesterday"},
        )
        assert status == 400
        assert server.admission.stats.offered == before

    def test_unknown_kind_is_400_and_counted_failed(self, server):
        failed = server.admission.stats.failed_error
        status, _, _ = request(
            server, "POST", "/v1/workload", {"kind": "warp"},
        )
        assert status == 400
        assert server.admission.stats.failed_error == failed + 1
        assert server.admission.stats.balanced

    def test_admin_scan_rate_roundtrip(self, server):
        status, data, _ = request(
            server, "POST", "/v1/admin/scan-rate", {"pages_to_scan": 321},
        )
        assert status == 200 and data["result"]["scan_rate"] == 321
        assert server.app.scan_rate == 321
        assert request(
            server, "POST", "/v1/admin/scan-rate", {},
        )[0] == 400

    def test_admin_spawn_vm(self, server):
        n_before = len(server.app.host.hypervisor.vms)
        status, data, _ = request(
            server, "POST", "/v1/admin/spawn-vm", {"pages": 8},
        )
        assert status == 200
        assert len(server.app.host.hypervisor.vms) == n_before + 1

    def test_admin_unknown_backend_is_400(self, server):
        status, data, _ = request(
            server, "POST", "/v1/admin/backend", {"backend": "nope"},
        )
        assert status == 400 and "unknown merge backend" in data["error"]

    def test_metrics_snapshot_is_control_plane(self, server):
        offered = server.admission.stats.offered
        status, data, _ = request(server, "GET", "/v1/metrics")
        assert status == 200
        assert data["admission/offered"] == offered  # not admitted itself
        assert "breaker/state" in data and "latency/count" in data

    def test_accounting_balanced_after_everything(self, server):
        assert server.admission.stats.balanced


class TestRateLimitOverHTTP:
    def test_429_with_retry_after(self):
        config = ServeConfig(port=0, n_vms=0, pages_per_vm=8,
                             tenant_rate_qps=0.5, tenant_burst=1.0)
        srv = MergeServer(config).start()
        try:
            ok = request(
                srv, "POST", "/v1/admin/scan-rate", {"pages_to_scan": 9},
                headers={TENANT_HEADER: "t1"},
            )
            assert ok[0] == 200
            status, data, headers = request(
                srv, "POST", "/v1/admin/scan-rate", {"pages_to_scan": 9},
                headers={TENANT_HEADER: "t1"},
            )
            assert status == 429
            assert data["reason"] == ShedReason.RATE_LIMITED
            assert float(headers["Retry-After"]) > 0
            assert srv.admission.stats.balanced
        finally:
            srv.close()


class TestBackendSwitch:
    def test_live_switch_preserves_content_and_remerges(self):
        config = ServeConfig(port=0, n_vms=2, pages_per_vm=40)
        srv = MergeServer(config).start()
        try:
            before = request(
                srv, "POST", "/v1/workload", {"kind": "read"},
            )[1]["result"]
            status, data, _ = request(
                srv, "POST", "/v1/admin/backend", {"backend": "esx"},
            )
            assert status == 200
            assert data["result"]["vms_moved"] == 2
            assert srv.app.host.backend == "esx"
            after = request(
                srv, "POST", "/v1/workload", {"kind": "read"},
            )[1]["result"]
            # Same guest-visible bytes through the new backend.
            assert after["head"] == before["head"]
            # The new merger re-discovers duplicates from scratch.
            scan = request(
                srv, "POST", "/v1/workload",
                {"kind": "scan", "pages": 1000},
            )[1]["result"]
            assert scan["merges"] > 0
        finally:
            srv.close()
