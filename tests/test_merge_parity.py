"""Merge-decision parity of the alternative backends vs the oracle.

`ksm/uksm.py` and `ksm/esx.py` implement the Section 7.2 comparison
points — UKSM's whole-system scanning and ESX's hash-bucket scheme.
Both must obey the same correctness contract as KSM proper: every pair
of pages they place on one frame held identical bytes (zero false
merges against the full-compare oracle), while missed content-equal
pairs are allowed, counted, and bounded.
"""

import pytest

from repro.common.config import TAILBENCH_APPS
from repro.common.rng import DeterministicRNG
from repro.ksm.esx import ESXStyleMerger
from repro.ksm.uksm import UKSMDaemon
from repro.mem import PhysicalMemory
from repro.verify.oracle import compare_to_oracle, reference_partition
from repro.virt import Hypervisor
from repro.workloads.memimage import MemoryImageProfile, build_vm_images

PAGES_PER_VM = 80
N_VMS = 3


def _image(seed):
    app = TAILBENCH_APPS["moses"]
    rng = DeterministicRNG(seed, "parity")
    hypervisor = Hypervisor(physical_memory=PhysicalMemory(64 << 20))
    profile = MemoryImageProfile.for_app(app, PAGES_PER_VM)
    build_vm_images(hypervisor, profile, N_VMS, rng)
    return hypervisor


@pytest.mark.parametrize("seed", [0, 1])
def test_esx_merge_parity_vs_oracle(seed):
    frozen = _image(seed)
    oracle = reference_partition(frozen)
    hypervisor = _image(seed)
    merger = ESXStyleMerger(hypervisor)
    merger.run_to_steady_state()
    report = compare_to_oracle(
        hypervisor, oracle, frozen_hypervisor=frozen, backend="esx"
    )
    assert report.zero_false_merges, [
        d.describe() for d in report.false_merges
    ]
    # ESX buckets on a full-page hash and verifies with a full compare,
    # so at steady state it should find essentially every duplicate.
    assert report.false_negative_rate <= 0.05, report.summary()


@pytest.mark.parametrize("seed", [0, 1])
def test_uksm_merge_parity_vs_oracle(seed):
    frozen = _image(seed)
    # UKSM scans every page, not just madvised regions — grade it
    # against the unrestricted oracle.
    oracle = reference_partition(frozen, mergeable_only=False)
    hypervisor = _image(seed)
    daemon = UKSMDaemon(hypervisor)
    daemon.run_to_steady_state(max_passes=8)
    report = compare_to_oracle(
        hypervisor, oracle, frozen_hypervisor=frozen,
        backend="uksm", mergeable_only=False,
    )
    assert report.zero_false_merges, [
        d.describe() for d in report.false_merges
    ]
    # The checksum-stability gate needs a second sighting per page, and
    # non-madvised pages join the pool late; allow a modest tail of
    # unmerged duplicates but require the bulk to be found.
    assert report.false_negative_rate <= 0.20, report.summary()


def test_uksm_covers_more_pages_than_ksm_contract():
    """UKSM's oracle universe (all pages) is a strict superset of the
    madvise-only universe KSM sees."""
    frozen = _image(0)
    restricted = reference_partition(frozen, mergeable_only=True)
    unrestricted = reference_partition(frozen, mergeable_only=False)
    assert unrestricted.n_pages >= restricted.n_pages
    assert unrestricted.duplicate_pairs >= restricted.duplicate_pairs
