"""Tests for ESX-style hash-bucket merging on both backends."""

import numpy as np
import pytest

from repro.common.units import PAGE_BYTES
from repro.core import PageForgeAPI, PageForgeEngine
from repro.ksm.esx import ESXStyleMerger, PageForgeESXBackend
from repro.mem import MemoryController, PhysicalMemory
from repro.virt import Hypervisor


def build_world(hypervisor, rng, n_vms=3, n_shared=4, n_unique=2):
    shared = [rng.bytes_array(PAGE_BYTES) for _ in range(n_shared)]
    for i in range(n_vms):
        vm = hypervisor.create_vm(f"vm{i}")
        gpn = 0
        for content in shared:
            hypervisor.populate_page(vm, gpn, content, mergeable=True)
            gpn += 1
        for _ in range(n_unique):
            hypervisor.populate_page(vm, gpn, rng.bytes_array(PAGE_BYTES),
                                     mergeable=True)
            gpn += 1
    return n_shared + n_vms * n_unique  # expected merged footprint


@pytest.fixture
def pf_backend(hypervisor):
    mc = MemoryController(0, hypervisor.memory, verify_ecc=False)
    api = PageForgeAPI(PageForgeEngine(mc))
    return PageForgeESXBackend(hypervisor, api)


class TestSoftwareBackend:
    def test_reaches_expected_footprint(self, hypervisor, rng):
        expected = build_world(hypervisor, rng)
        merger = ESXStyleMerger(hypervisor)
        merger.run_to_steady_state()
        assert hypervisor.footprint_pages() == expected
        hypervisor.verify_consistency()

    def test_bucket_hits_counted(self, hypervisor, rng):
        build_world(hypervisor, rng)
        merger = ESXStyleMerger(hypervisor)
        merger.run_to_steady_state()
        assert merger.stats.bucket_hits > 0
        assert merger.stats.merges > 0

    def test_no_false_merges(self, hypervisor, rng):
        """Key collisions must never merge different contents."""
        build_world(hypervisor, rng)
        merger = ESXStyleMerger(hypervisor)
        merger.run_to_steady_state()
        for vm in hypervisor.vms.values():
            for mapping in vm.mappings():
                frame = hypervisor.memory.frame(mapping.ppn)
                for (ovm_id, ogpn) in hypervisor.sharers(mapping.ppn):
                    other = hypervisor.vms[ovm_id]
                    assert np.array_equal(
                        hypervisor.guest_read(other, ogpn), frame.data
                    )

    def test_interval_budget(self, hypervisor, rng):
        build_world(hypervisor, rng)
        merger = ESXStyleMerger(hypervisor)
        interval = merger.scan_pages(n_pages=3)
        assert interval.pages_scanned <= 3

    def test_empty_world(self, hypervisor):
        merger = ESXStyleMerger(hypervisor)
        interval = merger.scan_pages()
        assert interval.pages_scanned == 0


class TestPageForgeBackend:
    def test_matches_software_result(self, rng):
        footprints = {}
        for kind in ("sw", "hw"):
            memory = PhysicalMemory(128 << 20)
            hypervisor = Hypervisor(physical_memory=memory)
            expected = build_world(hypervisor, rng.derive(f"esx-{kind}"))
            if kind == "sw":
                merger = ESXStyleMerger(hypervisor)
            else:
                mc = MemoryController(0, memory, verify_ecc=False)
                api = PageForgeAPI(PageForgeEngine(mc))
                merger = ESXStyleMerger(
                    hypervisor, backend=PageForgeESXBackend(hypervisor, api)
                )
            merger.run_to_steady_state()
            footprints[kind] = (hypervisor.footprint_pages(), expected)
        assert footprints["sw"][0] == footprints["sw"][1]
        assert footprints["hw"][0] == footprints["hw"][1]

    def test_hardware_key_used(self, hypervisor, rng, pf_backend):
        from repro.core import ecc_hash_key

        build_world(hypervisor, rng)
        vm = hypervisor.vms[0]
        frame = hypervisor.memory.frame(vm.translate(0))
        assert pf_backend.key_for(frame) == ecc_hash_key(frame.data)

    def test_hardware_comparisons_counted(self, hypervisor, rng,
                                          pf_backend):
        build_world(hypervisor, rng)
        merger = ESXStyleMerger(hypervisor, backend=pf_backend)
        merger.run_to_steady_state()
        assert merger.stats.full_comparisons > 0
        assert pf_backend.api.engine.stats.page_comparisons > 0
        assert merger.stats.merges > 0


class TestAlgorithmComparison:
    def test_esx_needs_fewer_comparisons_than_tree(self, rng):
        """Hash-bucketing's selling point: candidates compare only
        against same-key pages, not along a whole tree path."""
        from repro.common.config import KSMConfig
        from repro.ksm import KSMDaemon

        def world():
            memory = PhysicalMemory(128 << 20)
            hyp = Hypervisor(physical_memory=memory)
            build_world(hyp, rng.derive("cmp"), n_vms=4, n_shared=6,
                        n_unique=6)
            return hyp

        hyp = world()
        esx = ESXStyleMerger(hyp)
        esx.run_to_steady_state()
        esx_footprint = hyp.footprint_pages()

        hyp = world()
        ksm = KSMDaemon(hyp, KSMConfig(pages_to_scan=10_000))
        ksm.run_to_steady_state()
        assert hyp.footprint_pages() == esx_footprint
        # Tree search compares along O(log n) nodes per candidate; the
        # hash filter compares only true bucket members.
        assert esx.stats.full_comparisons < ksm.stats.comparisons
