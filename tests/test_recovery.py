"""Checkpointing, journaling, and crash-equivalent recovery."""

import json

import numpy as np
import pytest

from repro.common.io import atomic_write_bytes, atomic_write_text
from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_BYTES
from repro.faults import FaultPlan, ProcessCrash
from repro.recovery import (
    CheckpointCorrupt,
    CheckpointStore,
    JournalCorrupt,
    MergeJournal,
    RecoverableRun,
    RecoveryDivergence,
    RunSpec,
    dump_checkpoint,
    load_checkpoint,
    read_journal,
    replay_journal,
    run_to_completion,
)
from repro.recovery import serialize
from repro.recovery.journal import encode_record
from repro.virt import Hypervisor


# ---------------------------------------------------------------------------
# Atomic writes + RNG state
# ---------------------------------------------------------------------------

def test_atomic_write_replaces_and_leaves_no_tmp(tmp_path):
    target = tmp_path / "out.bin"
    atomic_write_bytes(target, b"first")
    atomic_write_bytes(target, b"second")
    assert target.read_bytes() == b"second"
    atomic_write_text(target, "third")
    assert target.read_text() == "third"
    leftovers = [p for p in tmp_path.iterdir() if p.name != "out.bin"]
    assert leftovers == []


def test_rng_state_roundtrip_resumes_stream():
    rng = DeterministicRNG(42, "ckpt")
    rng.random(size=10)
    state = rng.get_state()
    expected = rng.random(size=5)
    fresh = DeterministicRNG(42, "ckpt")
    fresh.set_state(json.loads(json.dumps(state)))  # through JSON
    assert np.array_equal(fresh.random(size=5), expected)


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------

def test_checkpoint_roundtrip_and_header(tmp_path):
    path = tmp_path / "c.pfck"
    state = {"a": [1, 2, 3], "b": {"x": "y"}}
    dump_checkpoint(path, state, step=7, journal_seq=99, meta={"k": 1})
    loaded, header = load_checkpoint(path)
    assert loaded == state
    assert header["step"] == 7
    assert header["journal_seq"] == 99
    assert header["meta"] == {"k": 1}


def test_checkpoint_corruption_detected(tmp_path):
    path = tmp_path / "c.pfck"
    dump_checkpoint(path, {"a": 1}, step=0)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip a payload bit
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointCorrupt):
        load_checkpoint(path)
    with pytest.raises(CheckpointCorrupt):
        load_checkpoint(__file__)  # bad magic


def test_store_falls_back_past_corrupt_newest(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    store.save(1, {"v": 1})
    store.save(2, {"v": 2})
    # Truncate the newest file mid-payload (crash during a non-atomic
    # copy, disk rot, ...).
    newest = store.path_for(2)
    newest.write_bytes(newest.read_bytes()[:40])
    state, header = store.latest()
    assert state == {"v": 1}
    assert header["step"] == 1
    assert store.skipped_corrupt == 1


def test_store_prunes_to_keep(tmp_path):
    store = CheckpointStore(tmp_path, keep=2)
    for step in range(5):
        store.save(step, {"v": step})
    assert store.steps() == [3, 4]


# ---------------------------------------------------------------------------
# The merge journal
# ---------------------------------------------------------------------------

def test_journal_append_flush_and_read(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = MergeJournal(path, flush_every=2).open()
    journal._emit("merge", {"wv": 0, "wg": 1, "lv": 1, "lg": 1, "ppn": 5,
                            "digest": "aa"})
    journal._emit("merge", {"wv": 0, "wg": 2, "lv": 1, "lg": 2, "ppn": 6,
                            "digest": "bb"})  # triggers flush
    journal._emit("unmerge", {"v": 1, "g": 2, "ppn": 9})  # pending
    journal.close()  # close flushes the tail
    records, dropped = read_journal(path)
    assert dropped == 0
    assert [r["op"] for r in records] == ["merge", "merge", "unmerge"]
    assert [r["seq"] for r in records] == [0, 1, 2]


def test_journal_crash_drops_unflushed_tail(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = MergeJournal(path, flush_every=10).open()
    journal._emit("merge", {"ppn": 1})
    journal.flush()
    journal._emit("merge", {"ppn": 2})  # never flushed
    journal.simulate_crash()
    records, dropped = read_journal(path)
    assert len(records) == 1 and dropped == 0
    assert records[0]["args"] == {"ppn": 1}


def test_journal_torn_tail_is_dropped(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = MergeJournal(path, flush_every=10).open()
    journal._emit("merge", {"ppn": 1})
    journal.flush()
    journal._emit("merge", {"ppn": 2})
    journal.simulate_crash(torn=True)  # half the record reaches disk
    records, dropped = read_journal(path)
    assert [r["args"]["ppn"] for r in records] == [1]
    assert dropped == 1


def test_journal_corruption_mid_file_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    good = encode_record({"seq": 0, "interval": 0, "op": "merge",
                          "args": {}})
    tampered = encode_record({"seq": 1, "interval": 0, "op": "merge",
                              "args": {"ppn": 3}})
    tampered = tampered.replace(b'"ppn": 3', b'"ppn": 4', 1)
    tail = encode_record({"seq": 2, "interval": 0, "op": "commit",
                          "args": {}})
    path.write_bytes(good + tampered + tail)
    with pytest.raises(JournalCorrupt):
        read_journal(path)


def test_journal_verify_mode_detects_divergence(tmp_path):
    journal = MergeJournal(tmp_path / "j.jsonl", flush_every=1).open()
    journal.begin_verify([
        {"seq": 0, "interval": 0, "op": "merge", "args": {"ppn": 5}},
    ])
    with pytest.raises(RecoveryDivergence):
        journal._emit("merge", {"ppn": 6})
    journal.close()


def test_journal_verify_then_append(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = MergeJournal(path, flush_every=1).open()
    journal.begin_verify([
        {"seq": 3, "interval": 1, "op": "merge", "args": {"ppn": 5}},
    ])
    journal.interval = 1
    journal._emit("merge", {"ppn": 5})  # matches -> cursor drained
    assert journal.mode == "append"
    journal._emit("unmerge", {"v": 0, "g": 1, "ppn": 2})  # appended
    journal.close()
    records, _ = read_journal(path)
    assert [r["seq"] for r in records] == [4]
    assert records[0]["op"] == "unmerge"


# ---------------------------------------------------------------------------
# Full-state serialisation
# ---------------------------------------------------------------------------

def _merged_setup(rng):
    hyp = Hypervisor(capacity_bytes=32 << 20)
    shared = rng.bytes_array(PAGE_BYTES)
    vms = []
    for i in range(3):
        vm = hyp.create_vm(f"vm{i}")
        hyp.populate_page(vm, 0, shared, mergeable=True)
        hyp.populate_page(vm, 1, rng.bytes_array(PAGE_BYTES),
                          mergeable=True)
        vms.append(vm)
    hyp.merge_pages(vms[0], 0, vms[1], 0)
    hyp.merge_pages(vms[0], 0, vms[2], 0)
    hyp.break_cow(vms[1], 0)
    return hyp, vms


def test_hypervisor_state_roundtrip(rng):
    hyp, _vms = _merged_setup(rng)
    state = json.loads(json.dumps(serialize.capture_hypervisor(hyp)))
    fresh = Hypervisor(capacity_bytes=32 << 20)
    serialize.restore_hypervisor(fresh, state)
    fresh.verify_consistency()
    assert serialize.page_digests(fresh) == serialize.page_digests(hyp)
    assert fresh.stats == hyp.stats
    assert fresh.memory._free_ppns == hyp.memory._free_ppns
    assert fresh._cow_ppns == hyp._cow_ppns
    # Allocation behaviour is part of the observable state: the next
    # allocations must hand out the same PPNs in the same order.
    a = [hyp.memory.allocate().ppn for _ in range(3)]
    b = [fresh.memory.allocate().ppn for _ in range(3)]
    assert a == b


def test_journal_replay_is_idempotent(rng, tmp_path):
    hyp, vms = _merged_setup(rng)
    # Reconstruct an identical pre-merge world to replay onto.
    rng2 = DeterministicRNG(1234, "tests")
    base, _ = _pre_merge_setup(rng2)
    journal_path = tmp_path / "j.jsonl"
    journal = MergeJournal(journal_path, flush_every=1).open()
    journal.attach_hypervisor(base)
    base.merge_pages(base.vm(0), 0, base.vm(1), 0)
    base.merge_pages(base.vm(0), 0, base.vm(2), 0)
    base.break_cow(base.vm(1), 0)
    journal.detach()
    journal.close()
    records, _ = read_journal(journal_path)
    assert [r["op"] for r in records] == ["merge", "merge", "break_cow"]

    target, _ = _pre_merge_setup(DeterministicRNG(1234, "tests"))
    stats1 = replay_journal(target, records)
    assert stats1["applied"] == 3 and stats1["mismatches"] == 0
    digests_once = serialize.page_digests(target)
    # Replaying the whole journal again converges to the same state.
    # (The break_cow undoes the second merge, so that pair re-executes —
    # idempotence is about the final state, not about skipping.)
    stats2 = replay_journal(target, records)
    assert stats2["mismatches"] == 0
    assert serialize.page_digests(target) == digests_once
    target.verify_consistency()
    assert serialize.page_digests(target) == serialize.page_digests(hyp)


def test_journal_replay_skips_present_effects(rng, tmp_path):
    """Records whose effects already hold are pure no-ops on replay."""
    base, _ = _pre_merge_setup(rng)
    journal = MergeJournal(tmp_path / "j.jsonl", flush_every=1).open()
    journal.attach_hypervisor(base)
    base.merge_pages(base.vm(0), 0, base.vm(1), 0)
    base.merge_pages(base.vm(0), 0, base.vm(2), 0)
    journal.detach()
    journal.close()
    records, _ = read_journal(tmp_path / "j.jsonl")
    # Replay onto the hypervisor the journal was recorded FROM: every
    # effect is already present, so nothing may execute.
    stats = replay_journal(base, records)
    assert stats["applied"] == 0
    assert stats["skipped"] == len(records)
    base.verify_consistency()


def _pre_merge_setup(rng):
    hyp = Hypervisor(capacity_bytes=32 << 20)
    shared = rng.bytes_array(PAGE_BYTES)
    vms = []
    for i in range(3):
        vm = hyp.create_vm(f"vm{i}")
        hyp.populate_page(vm, 0, shared, mergeable=True)
        hyp.populate_page(vm, 1, rng.bytes_array(PAGE_BYTES),
                          mergeable=True)
        vms.append(vm)
    return hyp, vms


# ---------------------------------------------------------------------------
# Crash-equivalence of the recoverable runner
# ---------------------------------------------------------------------------

def _small_spec(**overrides):
    plan = overrides.pop("plan", None) or FaultPlan(
        seed=3, vm_destroy_prob=0.05, unmerge_churn_prob=0.3,
        crash_after_ops=35,
    )
    defaults = dict(app="moses", mode="ksm", seed=3, pages_per_vm=40,
                    n_vms=3, intervals=6, checkpoint_every=2, plan=plan)
    defaults.update(overrides)
    return RunSpec(**defaults)


def test_crash_equivalence_ksm(tmp_path):
    spec = _small_spec()
    crashed = run_to_completion(spec, tmp_path / "crashed")
    assert crashed["crashes"] >= 1
    reference = RecoverableRun(
        spec.without_crashes(), tmp_path / "ref"
    ).run()
    assert crashed["fingerprint"] == reference["fingerprint"]
    # Recovered state passes the PR-3 verification machinery.
    assert crashed["validation"]["auditor_clean"]
    assert crashed["validation"]["zero_false_merges"]
    assert reference["validation"]["auditor_clean"]


def test_crash_equivalence_with_interval_crashes(tmp_path):
    plan = FaultPlan(seed=11, process_crash_prob=0.4,
                     vm_destroy_prob=0.05, unmerge_churn_prob=0.3)
    spec = _small_spec(seed=11, plan=plan, intervals=8)
    crashed = run_to_completion(spec, tmp_path / "crashed",
                                max_attempts=16)
    reference = RecoverableRun(
        spec.without_crashes(), tmp_path / "ref"
    ).run()
    assert crashed["crashes"] >= 1  # prob 0.4 over 8 intervals
    assert crashed["fingerprint"] == reference["fingerprint"]
    assert crashed["validation"]["auditor_clean"]
    assert crashed["validation"]["zero_false_merges"]


@pytest.mark.slow
def test_crash_equivalence_pageforge(tmp_path):
    plan = FaultPlan(
        seed=5, single_bit_rate=5e-4, drop_rate=2e-4,
        table_corruption_rate=5e-4, vm_destroy_prob=0.05,
        unmerge_churn_prob=0.3, crash_after_ops=30,
    )
    spec = _small_spec(mode="pageforge", seed=5, plan=plan,
                       pages_per_vm=30, intervals=4)
    crashed = run_to_completion(spec, tmp_path / "crashed")
    reference = RecoverableRun(
        spec.without_crashes(), tmp_path / "ref"
    ).run()
    assert crashed["crashes"] >= 1
    assert crashed["fingerprint"] == reference["fingerprint"]
    assert crashed["validation"]["auditor_clean"]
    assert crashed["validation"]["zero_false_merges"]


def test_resume_survives_corrupt_newest_checkpoint(tmp_path):
    # Crash late enough (op 60: mid-interval 5) that checkpoints at
    # intervals 2 and 4 are already on disk.
    spec = _small_spec(plan=FaultPlan(
        seed=3, vm_destroy_prob=0.05, unmerge_churn_prob=0.3,
        crash_after_ops=60,
    ))
    workdir = tmp_path / "run"
    run = RecoverableRun(spec, workdir)
    try:
        run.run()
    except ProcessCrash:
        run.journal.detach()
        run.journal.simulate_crash()
    # Corrupt the newest checkpoint: recovery must fall back to the
    # previous one and still converge to the reference fingerprint.
    steps = run.store.steps()
    assert steps, "crash expected after at least one checkpoint"
    newest = run.store.path_for(steps[-1])
    newest.write_bytes(newest.read_bytes()[:64])
    resumed = RecoverableRun.resume(workdir, attempt=1)
    result = resumed.run()
    reference = RecoverableRun(
        spec.without_crashes(), tmp_path / "ref"
    ).run()
    assert result["fingerprint"] == reference["fingerprint"]
    assert result["skipped_corrupt_checkpoints"] >= 1


def test_tampered_journal_raises_divergence(tmp_path):
    spec = _small_spec()
    workdir = tmp_path / "run"
    run = RecoverableRun(spec, workdir)
    try:
        run.run()
    except ProcessCrash:
        run.journal.detach()
        run.journal.simulate_crash()
    journal_path = workdir / "journal.jsonl"
    records, _ = read_journal(journal_path)
    assert records
    # Rewrite the last surviving record with a different merge target —
    # the re-execution must notice it is not reproducing this history.
    victim = dict(records[-1])
    victim["args"] = dict(victim["args"])
    if victim["op"] == "commit":
        victim["args"]["footprint"] = victim["args"]["footprint"] + 1
    else:
        victim["args"]["ppn"] = victim["args"].get("ppn", 0) + 1
    with open(journal_path, "wb") as handle:
        for record in records[:-1]:
            handle.write(encode_record(
                {k: v for k, v in record.items() if k != "crc"}
            ))
        handle.write(encode_record(
            {k: v for k, v in victim.items() if k != "crc"}
        ))
    resumed = RecoverableRun.resume(workdir, attempt=1)
    with pytest.raises(RecoveryDivergence):
        resumed.run()


def test_spec_json_roundtrip():
    spec = _small_spec()
    clone = RunSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.plan == spec.plan
    quiet = spec.without_crashes()
    assert quiet.plan.crash_after_ops == 0
    assert quiet.plan.process_crash_prob == 0.0
    assert quiet.plan.vm_destroy_prob == spec.plan.vm_destroy_prob


# ---------------------------------------------------------------------------
# Checkpoint/resume of the Fig. 7 savings experiment
# ---------------------------------------------------------------------------

def test_savings_resume_matches_uninterrupted(tmp_path):
    from repro.sim.runner import run_memory_savings

    # Big enough that one 4000-page scan tick is ~one pass — the run
    # then spans several ticks and actually crosses a checkpoint.
    kwargs = dict(app="moses", pages_per_vm=2000, n_vms=2, seed=7,
                  engine="ksm", max_passes=4)
    uninterrupted = run_memory_savings(**kwargs)
    ckpt_dir = tmp_path / "ckpts"
    first = run_memory_savings(
        checkpoint_every=2, checkpoint_dir=ckpt_dir, **kwargs
    )
    assert first.pages_after == uninterrupted.pages_after
    store = CheckpointStore(ckpt_dir)
    assert store.steps(), "expected at least one checkpoint"
    resumed = run_memory_savings(
        checkpoint_every=2, checkpoint_dir=ckpt_dir, resume=True, **kwargs
    )
    assert resumed.pages_after == uninterrupted.pages_after
    assert resumed.merges == uninterrupted.merges
    assert resumed.after_by_category == uninterrupted.after_by_category
    assert resumed.pages_before == uninterrupted.pages_before


def test_latency_mode_summaries_resume(tmp_path):
    from repro.sim.runner import run_latency_experiment
    from repro.sim.system import SimulationScale

    scale = SimulationScale(pages_per_vm=60, n_vms=2, duration_s=0.05,
                            warmup_s=0.05)
    first = run_latency_experiment(
        "moses", modes=("baseline",), scale=scale, seed=7,
        checkpoint_dir=tmp_path,
    )
    assert (tmp_path / "latency-moses-baseline.json").exists()
    resumed = run_latency_experiment(
        "moses", modes=("baseline",), scale=scale, seed=7,
        checkpoint_dir=tmp_path, resume=True,
    )
    assert (
        resumed.summaries["baseline"] == first.summaries["baseline"]
    )


# ---------------------------------------------------------------------------
# Heartbeat liveness: monotonic payload with mtime fallback
# ---------------------------------------------------------------------------

def test_heartbeat_payload_carries_monotonic_clock(tmp_path):
    import time

    from repro.recovery.supervisor import read_heartbeat

    run = RecoverableRun(_small_spec(), tmp_path, attempt=0)
    before = time.monotonic()
    run.heartbeat(3)
    after = time.monotonic()
    payload = json.loads((tmp_path / "heartbeat").read_text())
    assert payload["interval"] == 3
    mono, mtime = read_heartbeat(tmp_path / "heartbeat")
    assert mono is not None and before <= mono <= after
    assert mtime is not None


def test_read_heartbeat_legacy_and_missing(tmp_path):
    from repro.recovery.supervisor import read_heartbeat

    legacy = tmp_path / "heartbeat"
    legacy.write_text("5\n")  # pre-payload format: a bare interval
    mono, mtime = read_heartbeat(legacy)
    assert mono is None  # no embedded clock -> caller falls back to mtime
    assert mtime is not None
    assert read_heartbeat(tmp_path / "missing") == (None, None)


def test_heartbeat_staleness_prefers_payload_over_mtime(tmp_path):
    import os
    import time

    from repro.recovery.supervisor import heartbeat_staleness

    path = tmp_path / "heartbeat"
    started_mono = time.monotonic()
    started_wall = time.time()

    # Fresh payload: staleness is near zero regardless of file mtime.
    path.write_text(json.dumps({"interval": 1, "mono": time.monotonic()}))
    os.utime(path, (started_wall - 3600, started_wall - 3600))
    assert heartbeat_staleness(path, started_mono, started_wall) < 1.0

    # Stale payload: an hour-old monotonic stamp reads as an hour stale
    # even though the file mtime is fresh.
    path.write_text(
        json.dumps({"interval": 1, "mono": time.monotonic() - 3600})
    )
    stale = heartbeat_staleness(path, started_mono - 7200, started_wall)
    assert stale > 3500


def test_heartbeat_staleness_clamps_to_spawn_time(tmp_path):
    import time

    from repro.recovery.supervisor import heartbeat_staleness

    path = tmp_path / "heartbeat"
    # A beat left behind by a previous attempt predates this watcher's
    # spawn; the fresh worker gets its full grace period from spawn.
    path.write_text(
        json.dumps({"interval": 9, "mono": time.monotonic() - 3600})
    )
    started_mono = time.monotonic()
    assert heartbeat_staleness(path, started_mono, time.time()) < 1.0

    # No heartbeat at all: staleness counts from spawn too.
    assert heartbeat_staleness(
        tmp_path / "missing", started_mono, time.time()
    ) < 1.0


def test_heartbeat_staleness_mtime_fallback_for_legacy_files(tmp_path):
    import os
    import time

    from repro.recovery.supervisor import heartbeat_staleness

    path = tmp_path / "heartbeat"
    path.write_text("4\n")
    started_wall = time.time() - 7200
    old = started_wall + 10
    os.utime(path, (old, old))
    stale = heartbeat_staleness(path, time.monotonic() - 7200, started_wall)
    assert stale > 7000  # counted from the legacy file's mtime
