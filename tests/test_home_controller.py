"""Tests for PageForge module placement across memory controllers.

Section 4.1 places one PageForge module in one (home) memory
controller; ``home_controller_for`` is the single place that choice is
made, and ``MultiPageForge`` is the evaluated alternative of one module
per controller.  These tests pin the placement logic and its wiring
through the timed system's backend.
"""

import dataclasses

import pytest

from repro.common.config import (
    KSMConfig,
    PageForgeConfig,
    TAILBENCH_APPS,
    default_machine_config,
)
from repro.common.units import PAGE_BYTES
from repro.core.multi import MultiPageForge
from repro.mem import MemoryController, PhysicalMemory
from repro.mem.controller import home_controller_for
from repro.sim import ServerSystem, SimulationScale
from repro.virt import Hypervisor

TINY = SimulationScale(
    pages_per_vm=100, n_vms=2, duration_s=0.08, warmup_s=0.08,
)

APP = TAILBENCH_APPS["moses"]


def make_controllers(memory, n):
    return [MemoryController(i, memory, verify_ecc=False) for i in range(n)]


class TestHomeControllerFor:
    def test_default_home_is_controller_zero(self, memory):
        controllers = make_controllers(memory, 2)
        home = home_controller_for(controllers, PageForgeConfig())
        assert home is controllers[0]

    @pytest.mark.parametrize("index", [0, 1, 3])
    def test_home_follows_config(self, memory, index):
        controllers = make_controllers(memory, 4)
        config = PageForgeConfig(home_memory_controller=index)
        assert home_controller_for(controllers, config) \
            is controllers[index]

    def test_out_of_range_home_raises(self, memory):
        controllers = make_controllers(memory, 2)
        config = PageForgeConfig(home_memory_controller=5)
        with pytest.raises(IndexError):
            home_controller_for(controllers, config)


class TestSystemPlacement:
    def test_backend_engine_sits_at_configured_home(self):
        base = default_machine_config()
        machine = dataclasses.replace(
            base,
            pageforge=dataclasses.replace(
                base.pageforge, home_memory_controller=1,
            ),
        )
        system = ServerSystem(
            APP, mode="pageforge", machine=machine, scale=TINY, seed=3,
        )
        engine_controller = system.pf_driver.engine.controller
        assert engine_controller is system.controllers[1]
        assert engine_controller.index == 1

    def test_default_placement_and_traffic_at_home(self):
        system = ServerSystem(APP, mode="pageforge", scale=TINY, seed=3)
        home = system.pf_driver.engine.controller
        assert home is system.controllers[0]
        system.run()
        # The engine's scans move lines through its home controller.
        assert home.stats.total_reads > 0


class TestMultiControllerPlacement:
    def build_world(self, rng, n_vms=3, n_shared=6):
        memory = PhysicalMemory(128 << 20)
        hypervisor = Hypervisor(physical_memory=memory)
        shared = [rng.bytes_array(PAGE_BYTES) for _ in range(n_shared)]
        for i in range(n_vms):
            vm = hypervisor.create_vm(f"vm{i}")
            for gpn, content in enumerate(shared):
                hypervisor.populate_page(vm, gpn, content, mergeable=True)
        return memory, hypervisor

    def test_one_engine_per_controller(self, rng):
        memory, hypervisor = self.build_world(rng)
        controllers = make_controllers(memory, 3)
        multi = MultiPageForge(
            hypervisor, controllers,
            ksm_config=KSMConfig(pages_to_scan=500),
        )
        assert multi.n_modules == 3
        for engine, controller in zip(multi.engines, controllers):
            assert engine.controller is controller

    def test_scanning_touches_every_controller(self, rng):
        memory, hypervisor = self.build_world(rng, n_vms=4, n_shared=8)
        controllers = make_controllers(memory, 2)
        multi = MultiPageForge(
            hypervisor, controllers,
            ksm_config=KSMConfig(pages_to_scan=500),
        )
        multi.run_to_steady_state()
        stats = multi.stats()
        assert all(c > 0 for c in stats.per_module_comparisons)
        hypervisor.verify_consistency()
