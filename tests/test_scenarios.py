"""Tests for the scenario registry, hint fast-path, and cold-start study."""

import pytest

from repro.common.config import KSMConfig, TAILBENCH_APPS
from repro.common.rng import DeterministicRNG
from repro.fleet import FleetSpec
from repro.fleet.shard import frame_digest_counts, run_shard, shard_tasks
from repro.ksm import KSMDaemon
from repro.mem import PhysicalMemory
from repro.scenarios import (
    ScenarioSpec,
    WorkloadModel,
    available_scenarios,
    get_scenario,
    run_cold_start_study,
)
from repro.sim.system import ServerSystem, SimulationScale
from repro.verify.invariants import InvariantAuditor
from repro.virt import Hypervisor
from repro.workloads import MemoryImageProfile, build_vm_images
from repro.workloads.tailbench import ArrivalProcess

TINY = SimulationScale(
    pages_per_vm=60, n_vms=2, duration_s=0.05, warmup_s=0.05
)


def _fresh_hypervisor(mib=256):
    return Hypervisor(physical_memory=PhysicalMemory(mib * 1024 * 1024))


class TestRegistry:
    def test_at_least_four_scenarios(self):
        names = available_scenarios()
        assert len(names) >= 4
        for expected in ("steady_state", "tailbench", "churn",
                         "serverless"):
            assert expected in names

    def test_sorted_and_stable(self):
        assert list(available_scenarios()) == sorted(available_scenarios())

    def test_get_scenario_returns_class(self):
        cls = get_scenario("steady_state")
        assert issubclass(cls, WorkloadModel)
        assert cls.name == "steady_state"

    def test_unknown_scenario_lists_registry(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("warehouse")
        message = str(excinfo.value)
        assert "warehouse" in message
        for name in available_scenarios():
            assert name in message


class TestScenarioSpec:
    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scenario="warehouse")

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError):
            ScenarioSpec(app="notanapp")

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n_vms=0)
        with pytest.raises(ValueError):
            ScenarioSpec(pages_per_vm=0)

    def test_build_images_produces_vms(self):
        hyp = _fresh_hypervisor()
        spec = ScenarioSpec(scenario="serverless", n_vms=3,
                            pages_per_vm=60)
        images = spec.build_images(hyp)
        assert len(images.vms) == 3
        assert hyp.guest_pages() == 3 * 60


class TestSteadyStateEquivalence:
    """The default scenario must be the legacy workload, bit for bit."""

    def test_images_match_legacy_builder(self):
        app = TAILBENCH_APPS["moses"]
        spec = ScenarioSpec(scenario="steady_state", n_vms=4,
                            pages_per_vm=80)

        hyp_new = _fresh_hypervisor()
        spec.build_images(hyp_new)

        hyp_old = _fresh_hypervisor()
        profile = MemoryImageProfile.for_app(app, 80)
        build_vm_images(hyp_old, profile, n_vms=4, rng=spec.content_rng())

        assert frame_digest_counts(hyp_new) == frame_digest_counts(hyp_old)

    def test_arrival_qps_unchanged(self):
        app = TAILBENCH_APPS["moses"]
        model = get_scenario("steady_state")()
        assert model.arrival_qps(app) == app.qps

    def test_no_hints(self):
        hyp = _fresh_hypervisor()
        spec = ScenarioSpec(scenario="steady_state")
        images = spec.build_images(hyp)
        assert tuple(spec.model().merge_hints(images)) == ()


class TestScenarioShapes:
    def test_tailbench_overdrives_load(self):
        app = TAILBENCH_APPS["moses"]
        model = get_scenario("tailbench")()
        assert model.arrival_qps(app) > app.qps

    def test_churn_profile_has_more_churn(self):
        app = TAILBENCH_APPS["moses"]
        base = get_scenario("steady_state")().image_profile(app, 400)
        churny = get_scenario("churn")().image_profile(app, 400)
        assert churny.churn_frac > base.churn_frac
        assert churny.counts()[1] > base.counts()[1]

    def test_serverless_hints_cover_fast_categories(self):
        hyp = _fresh_hypervisor()
        spec = ScenarioSpec(scenario="serverless", n_vms=2,
                            pages_per_vm=60)
        images = spec.build_images(hyp)
        hints = tuple(spec.model().merge_hints(images))
        assert hints
        expected = set()
        for category in ("zero", "shared_all"):
            for vm in images.vms:
                for gpn in images.category_gpns[category]:
                    expected.add((vm.vm_id, gpn))
        assert set(hints) == expected


class TestSeedDeterminism:
    """Any registered scenario replays bit-identically from its seed."""

    def _fingerprint(self, spec):
        hyp = _fresh_hypervisor()
        images = spec.build_images(hyp)
        hints = tuple(spec.model().merge_hints(images))
        app = spec.app_config
        arrivals = tuple(
            ArrivalProcess(
                spec.model().arrival_qps(app),
                spec.content_rng().derive("arrivals"),
            ).arrivals_until(0.5)
        )
        return frame_digest_counts(hyp), hints, arrivals

    @pytest.mark.parametrize("scenario", available_scenarios())
    def test_replay_is_bit_identical(self, scenario):
        spec = ScenarioSpec(scenario=scenario, n_vms=2, pages_per_vm=60,
                            seed=97)
        assert self._fingerprint(spec) == self._fingerprint(spec)

    def test_property_seed_determinism(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=10, deadline=None)
        @given(
            scenario=st.sampled_from(available_scenarios()),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            n_vms=st.integers(min_value=1, max_value=3),
            pages_per_vm=st.sampled_from((40, 60, 80)),
        )
        def check(scenario, seed, n_vms, pages_per_vm):
            spec = ScenarioSpec(scenario=scenario, n_vms=n_vms,
                                pages_per_vm=pages_per_vm, seed=seed)
            assert self._fingerprint(spec) == self._fingerprint(spec)

        check()


class TestHintEnqueue:
    def _hinted_world(self):
        hyp = _fresh_hypervisor()
        spec = ScenarioSpec(scenario="serverless", n_vms=2,
                            pages_per_vm=60)
        images = spec.build_images(hyp)
        hints = tuple(spec.model().merge_hints(images))
        return hyp, images, hints

    def test_bogus_hints_rejected(self):
        hyp, _images, _hints = self._hinted_world()
        daemon = KSMDaemon(hyp, KSMConfig(pages_to_scan=500))
        accepted = daemon.enqueue_hints([("no-such-vm", 0), ("vm0", 10**6)])
        assert accepted == 0
        assert daemon.hints_accepted == 0

    def test_hinted_pages_merge_in_first_interval(self):
        hyp, _images, hints = self._hinted_world()
        daemon = KSMDaemon(hyp, KSMConfig(pages_to_scan=500))
        accepted = daemon.enqueue_hints(hints)
        assert accepted == len(hints)
        before = hyp.footprint_pages()
        daemon.scan_pages(len(hints))
        assert hyp.footprint_pages() < before
        hyp.verify_consistency()

    def test_unhinted_first_interval_merges_nothing(self):
        hyp, _images, hints = self._hinted_world()
        daemon = KSMDaemon(hyp, KSMConfig(pages_to_scan=500))
        before = hyp.footprint_pages()
        # Same budget, no hints: pass 1 only seeds checksums (the
        # stability gate), so no frame is reclaimed yet.
        daemon.scan_pages(len(hints))
        assert hyp.footprint_pages() == before


class TestBackendHintStats:
    def _run(self, mode):
        auditor = InvariantAuditor()
        system = ServerSystem(
            TAILBENCH_APPS["moses"], mode=mode, scale=TINY, seed=7,
            scenario="serverless", auditor=auditor,
        )
        system.run()
        return system.hint_stats, auditor

    def test_baseline_ignores_all_hints(self):
        stats, auditor = self._run("baseline")
        assert stats["offered"] > 0
        assert stats["accepted"] == 0
        assert stats["ignored"] == stats["offered"]
        assert auditor.clean

    @pytest.mark.parametrize("mode", ["ksm", "uksm", "esx", "pageforge"])
    def test_merging_backends_accept_hints(self, mode):
        stats, auditor = self._run(mode)
        assert stats["offered"] > 0
        assert stats["accepted"] > 0
        assert stats["accepted"] + stats["ignored"] == stats["offered"]
        assert auditor.clean

    def test_steady_state_offers_no_hints(self):
        system = ServerSystem(
            TAILBENCH_APPS["moses"], mode="ksm", scale=TINY, seed=7,
        )
        assert system.hint_stats == {
            "offered": 0, "accepted": 0, "ignored": 0,
        }

    def test_scenario_metrics_published(self):
        system = ServerSystem(
            TAILBENCH_APPS["moses"], mode="ksm", scale=TINY, seed=7,
            scenario="serverless",
        )
        system.run()
        snapshot = system.metrics.snapshot()
        assert snapshot["scenario/hints_offered"] > 0
        assert snapshot["scenario/hints_accepted"] > 0


class TestColdStartStudy:
    def test_hints_speed_up_and_stay_auditor_clean(self):
        study = run_cold_start_study(
            backend="ksm", n_sandboxes=4, pages_per_vm=64, seed=11,
        )
        assert study.auditor_clean
        assert study.footprints_equal
        assert study.hints_accepted > 0
        assert study.reclaimable_pages > 0
        assert 0.0 < study.cold_start_savings_frac <= 1.0
        # The hinted run reclaims strictly more in interval 1 and
        # reaches steady state at least as fast.
        assert (study.hinted_first_interval_pages
                < study.unhinted_first_interval_pages)
        assert study.hint_speedup >= 1.0

    def test_metrics_payload_round_trips(self):
        study = run_cold_start_study(
            backend="ksm", n_sandboxes=4, pages_per_vm=64, seed=11,
        )
        payload = study.metrics()
        assert payload["cold_start_savings_frac"] == pytest.approx(
            study.cold_start_savings_frac
        )
        assert payload["hint_speedup"] == pytest.approx(study.hint_speedup)


class TestFleetScenarios:
    def test_heterogeneous_cycles_scenarios(self):
        spec = FleetSpec.heterogeneous(
            4, ("ksm",), scenarios=("steady_state", "serverless"),
            n_vms=2, pages_per_vm=40,
        )
        assert [h.scenario for h in spec.hosts] == [
            "steady_state", "serverless", "steady_state", "serverless",
        ]

    def test_unknown_scenario_lists_registry(self):
        with pytest.raises(ValueError) as excinfo:
            FleetSpec.heterogeneous(2, ("ksm",), scenarios=("warehouse",))
        message = str(excinfo.value)
        assert "warehouse" in message
        assert "registered scenarios" in message

    def test_shard_carries_scenario_end_to_end(self):
        spec = FleetSpec.uniform(
            1, backend="ksm", n_vms=2, pages_per_vm=40,
            duration_s=0.05, warmup_s=0.05, scenario="serverless",
        )
        (task,) = shard_tasks(spec)
        assert task.scenario == "serverless"
        result = run_shard(task)
        assert result.scenario == "serverless"


class TestCliScenarioErrors:
    def test_run_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        rc = main(["run", "--scenario", "warehouse", "--apps", "moses"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "registered scenarios" in err

    def test_fleet_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        rc = main(["fleet", "--scenario", "warehouse", "--shards", "1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "registered scenarios" in err

    def test_loadgen_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        rc = main(["loadgen", "--url", "http://127.0.0.1:1",
                   "--scenario", "warehouse"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "registered scenarios" in err


class TestServeLoadSpec:
    def test_resolved_defaults_are_legacy_constants(self):
        from repro.serve.loadgen import LoadSpec

        spec = LoadSpec().resolved()
        assert spec.heavy_frac == 0.1
        assert spec.heavy_pages == 400
        assert spec.light_kind == "read"

    def test_serverless_mix_comes_from_scenario(self):
        from repro.serve.loadgen import LoadSpec

        model = get_scenario("serverless")()
        spec = LoadSpec(scenario="serverless").resolved()
        assert spec.heavy_frac == model.serve_heavy_frac
        assert spec.heavy_pages == model.serve_heavy_pages
        assert spec.light_kind == model.serve_light_kind

    def test_explicit_mix_overrides_scenario(self):
        from repro.serve.loadgen import LoadSpec

        spec = LoadSpec(scenario="serverless", heavy_frac=0.9).resolved()
        assert spec.heavy_frac == 0.9
        assert spec.heavy_pages == 200  # still the scenario's

    def test_unknown_scenario_raises(self):
        from repro.serve.loadgen import LoadSpec

        with pytest.raises(ValueError):
            LoadSpec(scenario="warehouse")

    def test_schedule_heavier_under_serverless(self):
        from repro.serve.loadgen import LoadSpec, _build_schedule

        def heavy_share(scenario):
            spec = LoadSpec(target_qps=2000.0, duration_s=1.0, seed=3,
                            scenario=scenario)
            schedule = _build_schedule(spec)
            return sum(1 for _i, _t, heavy, _ten in schedule if heavy) / len(
                schedule
            )

        assert heavy_share("serverless") > heavy_share("steady_state")


class TestAtomicExports:
    def test_all_export_paths_use_atomic_writes(self, tmp_path,
                                                monkeypatch):
        import repro.analysis.export as export

        calls = []

        def recorder(path, text):
            calls.append(str(path))

        monkeypatch.setattr(export, "atomic_write_text", recorder)
        rows = [{"a": 1, "b": 2.5}]
        export.rows_to_csv(rows, tmp_path / "rows.csv")
        export.rows_to_json(rows, tmp_path / "rows.json")
        assert len(calls) == 2
        # The stub never wrote, so nothing may have bypassed it.
        assert not (tmp_path / "rows.csv").exists()
        assert not (tmp_path / "rows.json").exists()
