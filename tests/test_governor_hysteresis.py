"""Hysteresis of the degradation governor under oscillating fault rates."""

import pytest

from repro.common.config import ResilienceConfig
from repro.faults.governor import DegradationGovernor

try:
    from hypothesis import given, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


def _config():
    return ResilienceConfig(
        fallback_fault_rate=2e-4, recovery_fault_rate=5e-5,
        ewma_alpha=0.5, probe_interval=4, recovery_probes=2,
    )


class Feeder:
    """Feeds per-interval (rate, lines) pairs as the cumulative counters
    the governor actually consumes."""

    def __init__(self, governor, lines_per_interval=10_000):
        self.governor = governor
        self.lines = lines_per_interval
        self._events = 0
        self._lines = 0

    def interval(self, rate):
        self._lines += self.lines
        self._events += int(rate * self.lines)
        self.governor.plan_interval()
        return self.governor.observe(self._events, self._lines)


def test_fallback_then_stay_degraded_under_oscillation():
    """An oscillating fault rate (noisy above/below the *recovery*
    threshold but never persistently healthy) must not flap the backend:
    every unhealthy probe resets the consecutive-healthy counter."""
    governor = DegradationGovernor(_config())
    feeder = Feeder(governor)

    # Two loud intervals push the EWMA over the fallback threshold.
    assert feeder.interval(1e-3) == "software"
    assert governor.transitions == [(1, "software")]

    # Oscillate: four quiet intervals (just enough EWMA decay for ONE
    # healthy probe, with alpha=0.5 halving it each time) then a spike.
    # One healthy probe is never followed by a second consecutive one,
    # so with recovery_probes=2 the governor must hold the software
    # backend — the spike resets the consecutive-healthy counter.
    for cycle in range(6):
        for _ in range(4):
            feeder.interval(0.0)   # healthy observations
        assert governor._healthy_probes == 1, cycle
        feeder.interval(1e-3)      # spike: resets the counter
        assert governor._healthy_probes == 0
        assert governor.backend == "software", cycle
    # No recovery transition ever happened.
    assert governor.transitions == [(1, "software")]
    assert governor.intervals_degraded > 0


def test_recovery_needs_consecutive_healthy_probes():
    governor = DegradationGovernor(_config())
    feeder = Feeder(governor)
    feeder.interval(1e-3)  # EWMA jumps to 5e-4: fallback
    assert governor.backend == "software"
    # Quiet intervals halve the EWMA (alpha=0.5): 5e-4 needs 4 halvings
    # to cross recovery_fault_rate=5e-5, then recovery_probes=2
    # consecutive healthy probes — recovery lands on quiet interval 5.
    quiet_needed = 0
    while governor.backend == "software":
        feeder.interval(0.0)
        quiet_needed += 1
        assert quiet_needed < 20, "governor never recovered"
    assert quiet_needed == 5
    assert governor.transitions[-1][1] == "hardware"
    assert [b for _, b in governor.transitions] == ["software", "hardware"]


def test_probe_cadence_while_degraded():
    governor = DegradationGovernor(_config())
    feeder = Feeder(governor)
    feeder.interval(1e-3)
    assert governor.backend == "software"
    # While degraded, exactly every probe_interval-th interval plans a
    # hardware probe; the rest run in software.
    plans = []
    for _ in range(8):
        plans.append(governor.plan_interval())
        governor.observe(governor._last_events, governor._last_lines)
    hardware_probes = plans.count("hardware")
    assert hardware_probes == 2  # 8 intervals / probe_interval=4
    assert set(plans) == {"hardware", "software"}


def test_switch_is_idempotent_directly():
    governor = DegradationGovernor(_config())
    governor._switch("hardware")  # already there: no-op
    assert governor.transitions == []
    governor._switch("software")
    governor._healthy_probes = 1
    governor._switch("software")  # repeated: no duplicate transition
    assert governor.transitions == [(0, "software")]
    assert governor._healthy_probes == 1  # no-op did not clear state


if HAVE_HYPOTHESIS:

    @given(st.lists(st.sampled_from(["hardware", "software"]),
                    min_size=1, max_size=40))
    def test_switch_idempotence_property(sequence):
        """However _switch is driven, the transition history never
        records two consecutive entries with the same backend, and a
        same-backend switch changes nothing at all."""
        governor = DegradationGovernor(_config())
        for backend in sequence:
            before = (governor.backend, governor._healthy_probes,
                      list(governor.transitions))
            governor._switch(backend)
            if backend == before[0]:
                assert governor.backend == before[0]
                assert governor._healthy_probes == before[1]
                assert governor.transitions == before[2]
        backends = [b for _, b in governor.transitions]
        assert all(a != b for a, b in zip(backends, backends[1:]))
        assert governor.backend == (
            backends[-1] if backends else "hardware"
        )

    @given(st.lists(st.floats(min_value=0.0, max_value=5e-3,
                              allow_nan=False), min_size=1, max_size=60))
    def test_observe_never_flaps_within_one_interval(rates):
        """Property: the transition history produced by any observation
        sequence alternates backends (hysteresis, not flapping)."""
        governor = DegradationGovernor(_config())
        feeder = Feeder(governor)
        for rate in rates:
            feeder.interval(rate)
        backends = [b for _, b in governor.transitions]
        assert all(a != b for a, b in zip(backends, backends[1:]))
else:  # pragma: no cover

    @pytest.mark.skip(reason="hypothesis not installed")
    def test_switch_idempotence_property():
        pass
