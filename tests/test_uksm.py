"""Tests for the UKSM variant (Section 7.2)."""


from repro.common.units import PAGE_BYTES
from repro.ksm.uksm import UKSMConfig, UKSMDaemon, sample_hash


def build_mixed_world(hypervisor, rng, n_vms=3):
    """VMs with shared pages where only *some* are madvised mergeable."""
    shared = [rng.bytes_array(PAGE_BYTES) for _ in range(4)]
    for i in range(n_vms):
        vm = hypervisor.create_vm(f"vm{i}")
        for gpn, content in enumerate(shared):
            # Only the first two pages opt in to KSM-style merging.
            hypervisor.populate_page(
                vm, gpn, content, mergeable=(gpn < 2)
            )
    return shared


class TestSampleHash:
    def test_deterministic(self, rng):
        page = rng.bytes_array(PAGE_BYTES)
        assert sample_hash(page) == sample_hash(page.copy())

    def test_whole_page_coverage(self, rng):
        """A change at the very end of the page is visible (unlike
        KSM's first-1KB jhash window)."""
        page = rng.bytes_array(PAGE_BYTES)
        before = sample_hash(page, stride=128)
        changed = page.copy()
        changed[3968] ^= 0xFF  # word 992: the last sampled word
        assert sample_hash(changed, stride=128) != before

    def test_stride_misses_between_samples(self, rng):
        page = rng.bytes_array(PAGE_BYTES)
        before = sample_hash(page, stride=128)
        changed = page.copy()
        changed[5] ^= 0xFF  # word 1 is between samples for stride>=8
        assert sample_hash(changed, stride=128) == before

    def test_differs_from_jhash_policy(self, rng):
        """Changes beyond 1 KB: invisible to KSM's checksum, visible to
        UKSM's strided hash."""
        from repro.ksm.jhash import page_checksum

        page = rng.bytes_array(PAGE_BYTES)
        changed = page.copy()
        changed[2048] ^= 0xFF
        assert page_checksum(changed) == page_checksum(page)
        assert sample_hash(changed) != sample_hash(page)


class TestWholeSystemScan:
    def test_merges_non_madvised_pages(self, hypervisor, rng):
        build_mixed_world(hypervisor, rng)
        daemon = UKSMDaemon(hypervisor)
        daemon.run_to_steady_state(max_passes=5)
        # All four shared contents merged, including the two that never
        # called madvise: 4 frames total.
        assert hypervisor.footprint_pages() == 4
        hypervisor.verify_consistency()

    def test_ksm_by_contrast_respects_madvise(self, hypervisor, rng):
        from repro.common.config import KSMConfig
        from repro.ksm import KSMDaemon

        build_mixed_world(hypervisor, rng)
        daemon = KSMDaemon(hypervisor, KSMConfig(pages_to_scan=500))
        daemon.run_to_steady_state(max_passes=5)
        # Only the madvised half merged: 2 shared frames + 2x3 private.
        assert hypervisor.footprint_pages() == 2 + 6

    def test_madvise_flag_restored(self, hypervisor, rng):
        build_mixed_world(hypervisor, rng)
        daemon = UKSMDaemon(hypervisor)
        daemon.run_to_steady_state(max_passes=5)
        vm = hypervisor.vms[0]
        assert vm.mapping(0).mergeable is True
        assert vm.mapping(2).mergeable is False


class TestBudgetGovernor:
    def test_quota_scales_with_budget(self, hypervisor, rng):
        build_mixed_world(hypervisor, rng)
        lo = UKSMDaemon(hypervisor, UKSMConfig(cpu_budget_frac=0.05))
        hi = UKSMDaemon(hypervisor, UKSMConfig(cpu_budget_frac=0.50))
        assert hi.pages_for_interval(0.02) >= lo.pages_for_interval(0.02)

    def test_quota_bounded(self, hypervisor, rng):
        build_mixed_world(hypervisor, rng)
        cfg = UKSMConfig(cpu_budget_frac=0.9, min_pages_per_interval=16,
                         max_pages_per_interval=100)
        daemon = UKSMDaemon(hypervisor, cfg,
                            cycles_per_page_estimate=1.0)
        assert daemon.pages_for_interval(1.0) == 100
        daemon.cycles_per_page_estimate = 1e12
        assert daemon.pages_for_interval(1.0) == 16

    def test_cost_estimate_adapts(self, hypervisor, rng):
        build_mixed_world(hypervisor, rng)
        daemon = UKSMDaemon(hypervisor, cycles_per_page_estimate=1000.0)
        daemon.observe_interval_cost(10, 1_000_000)  # 100k cycles/page
        assert daemon.cycles_per_page_estimate > 1000.0

    def test_budgeted_interval_runs(self, hypervisor, rng):
        build_mixed_world(hypervisor, rng)
        daemon = UKSMDaemon(hypervisor)
        stats, quota = daemon.scan_budgeted_interval(0.02)
        assert quota >= daemon.config.min_pages_per_interval
        assert stats.pages_scanned >= 0

    def test_zero_scan_does_not_update_estimate(self, hypervisor, rng):
        daemon = UKSMDaemon(hypervisor)
        before = daemon.cycles_per_page_estimate
        daemon.observe_interval_cost(0, 12345)
        assert daemon.cycles_per_page_estimate == before
