"""Tests for the merge-backend registry and the uksm/esx backends.

The registry is the single dispatch point for every mode string; these
tests cover its contract (registration, lookup errors, recoverability
filtering) and then drive the two non-paper backends end-to-end through
the same ServerSystem / runner / export path the paper's three use.
"""

import pytest

from repro.common.config import KSMConfig, TAILBENCH_APPS
from repro.ksm import KSMDaemon
from repro.ksm.esx import ESXStyleMerger
from repro.ksm.uksm import UKSMDaemon
from repro.recovery.runner import RunSpec, run_to_completion
from repro.sim import ServerSystem, SimulationScale
from repro.sim.backends import (
    MergeBackend,
    available_backends,
    get_backend,
    recoverable_backends,
    register_backend,
)
from repro.sim.runner import run_latency_experiment, run_memory_savings
from repro.verify.invariants import InvariantAuditor

TINY = SimulationScale(
    pages_per_vm=120, n_vms=3, duration_s=0.12, warmup_s=0.08,
)

APP = TAILBENCH_APPS["moses"]


@pytest.fixture(scope="module")
def new_mode_systems():
    result = {}
    for mode in ("baseline", "uksm", "esx"):
        system = ServerSystem(APP, mode=mode, scale=TINY, seed=11)
        system.run()
        result[mode] = system
    return result


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == (
            "baseline", "esx", "ksm", "pageforge", "uksm",
        )

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("vmware")
        message = str(excinfo.value)
        assert "vmware" in message
        for name in available_backends():
            assert name in message

    def test_recoverable_subset(self):
        recoverable = recoverable_backends()
        assert set(recoverable) == {"ksm", "pageforge", "uksm"}
        for name in recoverable:
            assert get_backend(name).supports_recovery

    def test_register_and_unregister_custom_backend(self):
        from repro.sim.backends import registry as reg

        @register_backend("custom-test")
        class CustomBackend(MergeBackend):
            pass

        try:
            assert CustomBackend.name == "custom-test"
            assert get_backend("custom-test") is CustomBackend
            assert "custom-test" in available_backends()
        finally:
            reg._REGISTRY.pop("custom-test", None)
        assert "custom-test" not in available_backends()

    def test_registration_gives_classes_their_name(self):
        for name in available_backends():
            assert get_backend(name).name == name


class TestUKSMBackend:
    def test_merges_pages(self, new_mode_systems):
        system = new_mode_systems["uksm"]
        assert system.hypervisor.stats.merges > 0
        assert system.hypervisor.footprint_pages() < \
            system.hypervisor.guest_pages()

    def test_daemon_is_uksm(self, new_mode_systems):
        system = new_mode_systems["uksm"]
        assert isinstance(system.ksm, UKSMDaemon)
        assert system.backend.daemon is system.ksm

    def test_budget_estimate_fed_from_measured_cost(self, new_mode_systems):
        daemon = new_mode_systems["uksm"].ksm
        # observe_interval_cost ran: the estimate left its initial value.
        assert daemon.cycles_per_page_estimate > 0
        assert daemon.stats.pages_scanned > 0

    def test_metrics_snapshot_includes_uksm_provider(self, new_mode_systems):
        snapshot = new_mode_systems["uksm"].metrics.snapshot()
        assert snapshot["uksm/cpu_budget_frac"] == pytest.approx(0.20)
        assert snapshot["uksm/cycles_per_page_estimate"] > 0
        assert snapshot["ksm_daemon/merges"] > 0

    def test_deterministic_across_runs(self):
        fingerprints = []
        for _ in range(2):
            system = ServerSystem(APP, mode="uksm", scale=TINY, seed=23)
            collector = system.run()
            fingerprints.append((
                len(collector),
                system.hypervisor.stats.merges,
                system.ksm_timing.total_cycles,
                system.metrics.snapshot(),
            ))
        assert fingerprints[0] == fingerprints[1]


class TestESXBackend:
    def test_merges_pages(self, new_mode_systems):
        system = new_mode_systems["esx"]
        assert system.hypervisor.stats.merges > 0
        assert system.hypervisor.footprint_pages() < \
            system.hypervisor.guest_pages()

    def test_merger_exposed(self, new_mode_systems):
        system = new_mode_systems["esx"]
        assert isinstance(system.esx, ESXStyleMerger)
        assert system.esx.stats.hash_lookups > 0

    def test_metrics_snapshot_includes_buckets(self, new_mode_systems):
        snapshot = new_mode_systems["esx"].metrics.snapshot()
        assert snapshot["esx_buckets/n_buckets"] > 0
        assert snapshot["esx/merges"] > 0

    def test_ksm_timing_attributed(self, new_mode_systems):
        timing = new_mode_systems["esx"].ksm_timing
        assert timing.intervals > 0
        # Full-page hashing dominates ESX's profile.
        assert timing.hash_cycles > timing.compare_cycles


class TestWorkloadInvariance:
    def test_new_modes_see_identical_workload(self, new_mode_systems):
        """Content/arrival RNG streams stay mode-independent."""
        guest_pages = {
            mode: system.hypervisor.guest_pages()
            for mode, system in new_mode_systems.items()
        }
        assert len(set(guest_pages.values())) == 1


class TestRunnerIntegration:
    def test_latency_experiment_uksm_and_esx(self):
        scale = SimulationScale(
            pages_per_vm=100, n_vms=2, duration_s=0.08, warmup_s=0.08,
        )
        result = run_latency_experiment(
            APP, modes=("baseline", "uksm", "esx"), scale=scale, seed=7,
        )
        assert set(result.summaries) == {"baseline", "uksm", "esx"}
        for mode in ("uksm", "esx"):
            assert result.normalized_mean(mode) > 0
            assert result.metrics[mode]["hypervisor/merges"] > 0
        # The esx summary carries KSM-style share columns.
        assert result.summaries["esx"].ksm_hash_share > 0

    def test_memory_savings_dispatches_esx(self):
        result = run_memory_savings(
            "moses", pages_per_vm=80, n_vms=2, engine="esx", max_passes=4,
        )
        assert result.engine == "esx"
        assert result.pages_after < result.pages_before

    def test_memory_savings_rejects_baseline_and_unknown(self):
        with pytest.raises(ValueError):
            run_memory_savings("moses", pages_per_vm=40, n_vms=2,
                               engine="baseline")
        with pytest.raises(ValueError):
            run_memory_savings("moses", pages_per_vm=40, n_vms=2,
                               engine="vmware")


class TestFunctionalFaces:
    def test_build_functional_types(self, hypervisor):
        config = KSMConfig(pages_to_scan=100)
        ksm = get_backend("ksm").build_functional(hypervisor, config)
        assert isinstance(ksm.merger, KSMDaemon)
        uksm = get_backend("uksm").build_functional(hypervisor, config)
        assert isinstance(uksm.merger, UKSMDaemon)
        esx = get_backend("esx").build_functional(hypervisor, config)
        assert isinstance(esx.merger, ESXStyleMerger)
        pf = get_backend("pageforge").build_functional(hypervisor, config)
        assert pf.driver is pf.merger
        assert pf.controller is not None

    def test_baseline_has_no_functional_stack(self, hypervisor):
        with pytest.raises(ValueError):
            get_backend("baseline").build_functional(
                hypervisor, KSMConfig()
            )

    def test_esx_capture_restore_roundtrip(self, rng):
        from repro.common.units import PAGE_BYTES
        from repro.recovery.serialize import capture_esx, restore_esx

        def build(hyp):
            shared = rng.derive("page").bytes_array(PAGE_BYTES)
            for i in range(3):
                vm = hyp.create_vm(f"vm{i}")
                hyp.populate_page(vm, 0, shared, mergeable=True)
                hyp.populate_page(
                    vm, 1,
                    rng.derive(f"u/{i}").bytes_array(PAGE_BYTES),
                    mergeable=True,
                )
            return ESXStyleMerger(hyp)

        from repro.mem import PhysicalMemory
        from repro.virt import Hypervisor

        merger = build(Hypervisor(physical_memory=PhysicalMemory(64 << 20)))
        merger.scan_pages(4)  # mid-pass: queue is non-empty
        state = capture_esx(merger)

        clone = build(Hypervisor(physical_memory=PhysicalMemory(64 << 20)))
        clone.scan_pages(4)
        restore_esx(clone, state)
        assert clone._buckets == merger._buckets
        assert vars(clone.stats) == vars(merger.stats)
        assert [
            (vm.vm_id, m.gpn) for vm, m in clone._queue
        ] == [(vm.vm_id, m.gpn) for vm, m in merger._queue]


class TestAuditorBoundary:
    @pytest.mark.parametrize("mode", ["uksm", "esx"])
    def test_audited_run_is_clean(self, mode):
        scale = SimulationScale(
            pages_per_vm=100, n_vms=2, duration_s=0.08, warmup_s=0.08,
        )
        auditor = InvariantAuditor(strict=False)
        system = ServerSystem(
            APP, mode=mode, scale=scale, seed=3, auditor=auditor,
        )
        system.run()
        assert auditor.total_checks > 0
        assert auditor.clean, auditor.violations[:3]


class TestRecovery:
    def test_uksm_run_spec_accepted_and_completes(self, tmp_path):
        spec = RunSpec(
            app="moses", mode="uksm", seed=5, pages_per_vm=40, n_vms=2,
            intervals=4, checkpoint_every=2,
        )
        result = run_to_completion(spec, tmp_path / "uksm-run")
        assert result["merges"] > 0
        assert result["validation"]["auditor_clean"]
        assert result["validation"]["zero_false_merges"]

    def test_esx_run_spec_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            RunSpec(mode="esx")
        assert "recoverable backends" in str(excinfo.value)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(mode="vmware")
