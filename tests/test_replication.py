"""Replication tier units: protocol, chaos links, replicas, sessions."""

import dataclasses
import json

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.recovery import ReplicationSession, RunSpec, read_journal
from repro.recovery.journal import JournalCorrupt, MergeJournal, encode_record
from repro.recovery.replication.protocol import (
    FrameCorrupt,
    FrameDecoder,
    checkpoint_blob,
    checkpoint_frame,
    decode_frame_body,
    encode_frame,
    encode_record_line,
    eof_frame,
    heartbeat_frame,
    hello_frame,
    record_frame,
)
from repro.recovery.replication.replica import ReplicaState
from repro.recovery.replication.transport import ChaosLink
from repro.recovery.snapshot import dump_checkpoint
from repro.sim.metrics import summarize


def _spec(**overrides):
    defaults = dict(
        app="moses", mode="ksm", seed=3, pages_per_vm=30, n_vms=3,
        intervals=4, checkpoint_every=2, plan=FaultPlan(seed=3),
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


# Protocol ------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip_every_kind(self):
        frames = [
            hello_frame("{}", 0, 0),
            record_frame('{"seq": 0}'),
            checkpoint_frame(2, 17, b"blobbytes"),
            heartbeat_frame(17, 1, 123.5),
            eof_frame(17),
        ]
        decoder = FrameDecoder()
        wire = b"".join(encode_frame(f) for f in frames)
        decoded = decoder.feed(wire)
        assert [f["kind"] for f in decoded] == [
            "hello", "record", "checkpoint", "heartbeat", "eof"
        ]
        assert checkpoint_blob(decoded[2]) == b"blobbytes"
        assert decoder.pending_bytes == 0

    def test_incremental_feed_one_byte_at_a_time(self):
        wire = encode_frame(heartbeat_frame(5, 2, 1.0))
        decoder = FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i:i + 1]))
        assert len(out) == 1 and out[0]["lsn"] == 5

    def test_corrupt_body_raises(self):
        wire = bytearray(encode_frame(eof_frame(9)))
        wire[10] ^= 0xFF  # damage the JSON body
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(bytes(wire))

    def test_tampered_field_fails_crc(self):
        frame = eof_frame(9)
        frame["crc"] = "0" * 16
        body = json.dumps(frame, sort_keys=True).encode()
        with pytest.raises(FrameCorrupt):
            decode_frame_body(body)

    def test_insane_length_prefix_raises(self):
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(b"\xff\xff\xff\xff")

    def test_record_line_roundtrip_is_byte_identical(self):
        line = encode_record({"seq": 4, "op": "merge", "args": {"x": 1},
                              "interval": 0})
        record = json.loads(line.decode())
        assert (encode_record_line(record) + "\n").encode() == line


# Chaos transport ------------------------------------------------------------------


def _link(plan):
    injector = FaultInjector(plan)
    return ChaosLink(injector, "replica-0"), injector.net_stats


class TestChaosLink:
    def test_quiet_link_delivers_in_order(self):
        link, stats = _link(FaultPlan.quiet())
        frames = [eof_frame(i) for i in range(10)]
        out = [d for f in frames for d in link.send(f)]
        assert [f["lsn"] for f in out] == list(range(10))
        assert stats.frames_delivered == 10

    def test_same_seed_same_fates(self):
        plan = FaultPlan.lossy_network(0.3, seed=11)
        outs = []
        for _ in range(2):
            link, _stats = _link(plan)
            delivered = [
                d["lsn"] for i in range(200)
                for d in link.send(eof_frame(i))
            ]
            outs.append(delivered)
        assert outs[0] == outs[1]

    def test_drop_duplicate_reorder_counters(self):
        plan = FaultPlan.lossy_network(0.4, seed=7)
        link, stats = _link(plan)
        for i in range(500):
            link.send(eof_frame(i))
        link.drain()
        assert stats.frames_dropped > 0
        assert stats.frames_duplicated > 0
        assert stats.frames_reordered > 0
        assert (stats.frames_delivered + stats.frames_dropped
                <= stats.frames_sent + stats.frames_duplicated)

    def test_reorder_is_adjacent_swap(self):
        plan = FaultPlan(seed=1, net_reorder_rate=0.5)
        link, _stats = _link(plan)
        seen = [d["lsn"] for i in range(100) for d in link.send(eof_frame(i))]
        seen += [d["lsn"] for d in link.drain()]
        assert sorted(seen) == list(range(100))  # nothing lost
        assert seen != list(range(100))  # something actually swapped
        for pos, lsn in enumerate(seen):  # displacement bounded by 1 slot
            assert abs(lsn - pos) <= 1

    def test_lag_is_fixed_depth(self):
        plan = FaultPlan(seed=1, net_lag_frames=3)
        link, _stats = _link(plan)
        assert link.send(eof_frame(0)) == []
        assert link.send(eof_frame(1)) == []
        assert link.send(eof_frame(2)) == []
        assert [d["lsn"] for d in link.send(eof_frame(3))] == [0]
        assert [d["lsn"] for d in link.drain()] == [1, 2, 3]

    def test_partition_swallows_a_window_then_heals(self):
        plan = FaultPlan(seed=2, partition_prob=0.99, partition_frames=4)
        link, stats = _link(plan)
        assert link.send(eof_frame(0)) == []  # partition starts
        assert link.partitioned
        for i in range(1, 4):
            assert link.send(eof_frame(i)) == []
        assert not link.partitioned
        assert stats.partitions_started == 1
        assert stats.partitions_healed == 1
        assert stats.partition_frames_dropped == 4

    def test_partitioned_drain_loses_queued_frames(self):
        plan = FaultPlan(seed=2, net_lag_frames=5, partition_prob=0.0)
        link, _stats = _link(plan)
        link.send(eof_frame(0))
        link._partition_left = 3  # mid-partition shutdown
        assert link.drain() == []


# Replica state --------------------------------------------------------------------


def _record_line(seq, op="merge", **args):
    line = encode_record(
        {"seq": seq, "interval": 0, "op": op, "args": args}
    )
    return line.decode().rstrip("\n")


class TestReplicaState:
    def test_applies_contiguous_records(self, tmp_path):
        replica = ReplicaState("replica-0", tmp_path / "r0")
        for seq in range(5):
            ack = replica.apply(record_frame(_record_line(seq)))
            assert ack["lsn"] == seq + 1
        replica.close()
        records, dropped = read_journal(tmp_path / "r0" / "journal.jsonl")
        assert [r["seq"] for r in records] == list(range(5))
        assert dropped == 0

    def test_duplicate_dropped_gap_dropped(self, tmp_path):
        replica = ReplicaState("replica-0", tmp_path / "r0")
        replica.apply(record_frame(_record_line(0)))
        replica.apply(record_frame(_record_line(0)))  # duplicate
        replica.apply(record_frame(_record_line(3)))  # gap
        assert replica.duplicates_dropped == 1
        assert replica.gaps_dropped == 1
        assert replica.durable_lsn == 1
        replica.close()

    def test_corrupt_record_dropped_not_installed(self, tmp_path):
        replica = ReplicaState("replica-0", tmp_path / "r0")
        line = _record_line(0)
        tampered = line.replace('"merge"', '"break"')
        replica.apply(record_frame(tampered))
        assert replica.corrupt_dropped == 1
        assert replica.durable_lsn == 0
        replica.close()
        assert read_journal(tmp_path / "r0" / "journal.jsonl") == ([], 0)

    def test_checkpoint_resync_snaps_cursor_forward(self, tmp_path):
        replica = ReplicaState("replica-0", tmp_path / "r0")
        replica.apply(record_frame(_record_line(0)))
        blob_path = tmp_path / "ckpt.pfck"
        dump_checkpoint(blob_path, {"interval": 2}, step=2, journal_seq=9)
        ack = replica.apply(
            checkpoint_frame(2, 9, blob_path.read_bytes())
        )
        assert replica.resyncs == 1
        assert replica.durable_lsn == 9 == ack["lsn"]
        # Streaming continues contiguously from the checkpoint.
        replica.apply(record_frame(_record_line(9)))
        assert replica.durable_lsn == 10
        replica.close()

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        replica = ReplicaState("replica-0", tmp_path / "r0")
        blob_path = tmp_path / "ckpt.pfck"
        dump_checkpoint(blob_path, {"interval": 2}, step=2, journal_seq=9)
        blob = bytearray(blob_path.read_bytes())
        blob[-1] ^= 0xFF
        replica.apply(checkpoint_frame(2, 9, bytes(blob)))
        assert replica.checkpoints_rejected == 1
        assert replica.checkpoints_installed == 0
        assert replica.durable_lsn == 0
        replica.close()

    def test_eof_marks_and_fsyncs(self, tmp_path):
        replica = ReplicaState("replica-0", tmp_path / "r0")
        replica.apply(record_frame(_record_line(0)))
        replica.apply(eof_frame(1))
        assert replica.eof_seen
        replica.close()


# read_journal hardening (satellite: torn tail vs mid-stream corruption) -----------


class TestJournalTornTailVsCorruption:
    def _journal_with(self, tmp_path, n=3):
        path = tmp_path / "journal.jsonl"
        journal = MergeJournal(path, flush_every=1).open()
        for _ in range(n):
            journal._emit("commit", {"i": journal.seq, "footprint": 1})
        journal.close()
        return path

    def test_torn_final_record_is_dropped(self, tmp_path):
        path = self._journal_with(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # cut mid-record: no trailing newline
        records, dropped = read_journal(path)
        assert len(records) == 2
        assert dropped == 1

    def test_newline_complete_bad_final_record_raises(self, tmp_path):
        path = self._journal_with(tmp_path)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        last = lines[-1]
        damaged = last.replace(b'"op"', b'"oq"', 1)  # crc now wrong
        path.write_bytes(b"".join(lines[:-1]) + damaged)
        assert damaged.endswith(b"\n")
        with pytest.raises(JournalCorrupt):
            read_journal(path)

    def test_mid_stream_corruption_still_raises(self, tmp_path):
        path = self._journal_with(tmp_path)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"op"', b'"oq"', 1)
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt):
            read_journal(path)

    def test_torn_record_with_valid_crc_is_kept(self, tmp_path):
        # A crash exactly between the record bytes and its newline: the
        # record is complete and its crc checks out — trustworthy.
        path = self._journal_with(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])  # strip only the final newline
        records, dropped = read_journal(path)
        assert len(records) == 3
        assert dropped == 0


# Metrics helper -------------------------------------------------------------------


class TestSummarize:
    def test_empty_is_zeroes(self):
        assert summarize([]) == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p95": 0.0
        }

    def test_stats(self):
        out = summarize(range(1, 101))
        assert out["count"] == 100
        assert out["min"] == 1 and out["max"] == 100
        assert out["mean"] == pytest.approx(50.5)
        assert out["p95"] == 96


# In-process sessions --------------------------------------------------------------


class TestReplicationSession:
    def test_clean_session_replicas_byte_identical(self, tmp_path):
        session = ReplicationSession(_spec(), tmp_path, n_replicas=2)
        out = session.run()
        assert out["failovers"] == 0
        primary = (tmp_path / "primary" / "journal.jsonl").read_bytes()
        for i in range(2):
            mirror = tmp_path / f"replica-{i}" / "journal.jsonl"
            assert mirror.read_bytes() == primary
        rep = out["replication"]
        assert rep["records_streamed"] > 0
        assert rep["checkpoints_streamed"] > 0
        assert out["metrics"]["replication/failovers"] == 0
        assert out["metrics"]["replication/records_streamed"] == \
            rep["records_streamed"]

    def test_killed_primary_fails_over_equivalently(self, tmp_path):
        session = ReplicationSession(_spec(), tmp_path, n_replicas=2)
        out = session.run(kill_at_lsns=[15], check_equivalence=True)
        assert out["failovers"] == 1
        assert out["promoted"] == ["replica-0"]
        assert out["final_workdir"].endswith("replica-0")
        assert out["equivalence"]["equivalent"]
        assert out["result"]["validation"]["auditor_clean"]
        assert out["result"]["validation"]["zero_false_merges"]
        lat = out["replication"]["failover_latency_s"]
        assert lat["count"] == 1 and lat["max"] > 0.0

    def test_degraded_failover_with_no_replicas(self, tmp_path):
        session = ReplicationSession(_spec(), tmp_path, n_replicas=0)
        out = session.run(kill_at_lsns=[15], check_equivalence=True)
        assert out["promoted"] == ["<self>"]
        assert out["equivalence"]["equivalent"]

    def test_lossy_links_do_not_change_fingerprint(self, tmp_path):
        quiet = ReplicationSession(_spec(), tmp_path / "quiet", n_replicas=1)
        lossy_plan = FaultPlan.lossy_network(
            0.15, seed=3, partition_prob=0.02, partition_frames=6
        )
        lossy = ReplicationSession(
            _spec(plan=lossy_plan), tmp_path / "lossy", n_replicas=1
        )
        a = quiet.run()
        b = lossy.run()
        assert b["replication"]["net"]["frames_dropped"] > 0 or \
            b["replication"]["net"]["partition_frames_dropped"] > 0
        assert a["result"]["fingerprint"] == b["result"]["fingerprint"]

    def test_election_prefers_highest_lsn_then_lowest_id(self, tmp_path):
        session = ReplicationSession(_spec(), tmp_path, n_replicas=3)
        r0, r1, r2 = session.replicas
        r0.next_expected = 5
        r1.next_expected = 9
        r2.next_expected = 9
        assert session.elect() is r1
        r2.next_expected = 12
        assert session.elect() is r2


def test_run_spec_roundtrips_net_fault_fields():
    plan = FaultPlan.lossy_network(0.1, seed=9, lag=2,
                                   partition_prob=0.05, partition_frames=8)
    spec = _spec(plan=plan)
    restored = RunSpec.from_json(spec.to_json())
    assert restored.plan == plan


def test_net_fault_rate_validation():
    with pytest.raises(ValueError):
        FaultPlan(net_drop_rate=0.7, net_duplicate_rate=0.4)
    with pytest.raises(ValueError):
        FaultPlan(net_lag_frames=-1)
    quiet = FaultPlan.quiet()
    assert quiet.net_fault_rate == 0.0
    assert dataclasses.replace(quiet, net_drop_rate=0.5).net_fault_rate == 0.5
