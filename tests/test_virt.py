"""Tests for repro.virt: VMs, hypervisor, merging, copy-on-write."""

import numpy as np
import pytest

from repro.common.units import PAGE_BYTES
from repro.virt import MergeRollback
from repro.virt.vm import VirtualMachine


class TestVirtualMachine:
    def test_map_translate(self):
        vm = VirtualMachine(0)
        vm.map_page(3, 42)
        assert vm.translate(3) == 42
        assert vm.is_mapped(3)
        assert not vm.is_mapped(4)

    def test_double_map_rejected(self):
        vm = VirtualMachine(0)
        vm.map_page(1, 10)
        with pytest.raises(ValueError):
            vm.map_page(1, 11)

    def test_unmapped_access_raises(self):
        vm = VirtualMachine(0)
        with pytest.raises(KeyError):
            vm.translate(9)

    def test_madvise_range(self):
        vm = VirtualMachine(0)
        for g in range(5):
            vm.map_page(g, g + 100)
        vm.madvise_mergeable(1, 3)
        mergeable = {m.gpn for m in vm.mergeable_mappings()}
        assert mergeable == {1, 2, 3}

    def test_mappings_sorted(self):
        vm = VirtualMachine(0)
        vm.map_page(5, 1)
        vm.map_page(2, 2)
        assert [m.gpn for m in vm.mappings()] == [2, 5]


class TestHypervisorAllocation:
    def test_touch_zeroes(self, hypervisor):
        vm = hypervisor.create_vm()
        mapping = hypervisor.touch_page(vm, 0)
        frame = hypervisor.memory.frame(mapping.ppn)
        assert frame.is_zero()
        assert hypervisor.stats.soft_faults == 1

    def test_touch_idempotent(self, hypervisor):
        vm = hypervisor.create_vm()
        m1 = hypervisor.touch_page(vm, 0)
        m2 = hypervisor.touch_page(vm, 0)
        assert m1.ppn == m2.ppn
        assert hypervisor.stats.soft_faults == 1

    def test_populate(self, hypervisor, rng):
        vm = hypervisor.create_vm()
        data = rng.bytes_array(PAGE_BYTES)
        mapping = hypervisor.populate_page(vm, 0, data)
        assert np.array_equal(hypervisor.guest_read(vm, 0), data)

    def test_guest_read_window(self, hypervisor, rng):
        vm = hypervisor.create_vm()
        data = rng.bytes_array(PAGE_BYTES)
        hypervisor.populate_page(vm, 0, data)
        window = hypervisor.guest_read(vm, 0, offset=100, length=16)
        assert np.array_equal(window, data[100:116])


class TestMerging:
    def test_merge_shares_frame(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        ppn = hyp.merge_pages(vm0, 0, vm1, 0)
        assert vm0.translate(0) == vm1.translate(0) == ppn
        assert hyp.memory.frame(ppn).refcount == 2
        assert hyp.stats.pages_freed_by_merging == 1
        hyp.verify_consistency()

    def test_merge_marks_cow(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        ppn = hyp.merge_pages(vm0, 0, vm1, 0)
        assert vm0.mapping(0).cow
        assert vm1.mapping(0).cow
        assert hyp.is_cow_protected(ppn)

    def test_merge_different_contents_rolls_back(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        with pytest.raises(MergeRollback):
            hyp.merge_pages(vm0, 0, vm1, 1)  # shared vs unique
        assert hyp.stats.merge_rollbacks == 1
        hyp.verify_consistency()

    def test_merge_already_merged_is_noop(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        before = hyp.footprint_pages()
        hyp.merge_pages(vm0, 0, vm1, 0)
        after_first = hyp.footprint_pages()
        hyp.merge_pages(vm0, 0, vm1, 0)
        assert hyp.footprint_pages() == after_first == before - 1

    def test_zero_page_merge_counted(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        hyp.merge_pages(vm0, 2, vm1, 2)
        assert hyp.stats.zero_page_merges == 1

    def test_sharers_tracking(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        ppn = hyp.merge_pages(vm0, 0, vm1, 0)
        assert hyp.sharers(ppn) == {(vm0.vm_id, 0), (vm1.vm_id, 0)}


class TestCopyOnWrite:
    def test_write_to_merged_breaks_cow(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        hyp.merge_pages(vm0, 0, vm1, 0)
        before = hyp.footprint_pages()
        payload = np.array([9, 9, 9], dtype=np.uint8)
        hyp.guest_write(vm1, 0, 10, payload)
        assert hyp.footprint_pages() == before + 1
        assert vm0.translate(0) != vm1.translate(0)
        # Writer sees its write; the other VM sees original data.
        assert hyp.guest_read(vm1, 0, 10, 3).tolist() == [9, 9, 9]
        assert hyp.guest_read(vm0, 0, 10, 3).tolist() != [9, 9, 9]
        assert hyp.stats.cow_breaks == 1
        hyp.verify_consistency()

    def test_write_to_private_page_no_cow(self, two_vm_setup):
        hyp, (vm0, _vm1) = two_vm_setup
        before = hyp.footprint_pages()
        hyp.guest_write(vm0, 1, 0, np.array([1], dtype=np.uint8))
        assert hyp.footprint_pages() == before
        assert hyp.stats.cow_breaks == 0

    def test_three_way_merge_and_break(self, hypervisor, rng):
        hyp = hypervisor
        content = rng.bytes_array(PAGE_BYTES)
        vms = [hyp.create_vm(f"v{i}") for i in range(3)]
        for vm in vms:
            hyp.populate_page(vm, 0, content, mergeable=True)
        hyp.merge_pages(vms[0], 0, vms[1], 0)
        hyp.merge_pages(vms[0], 0, vms[2], 0)
        ppn = vms[0].translate(0)
        assert hyp.memory.frame(ppn).refcount == 3
        # One VM writes: only it gets a copy.
        hyp.guest_write(vms[1], 0, 0, np.array([7], dtype=np.uint8))
        assert hyp.memory.frame(ppn).refcount == 2
        assert vms[0].translate(0) == vms[2].translate(0) == ppn
        hyp.verify_consistency()

    def test_sole_owner_write_after_all_others_broke(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        hyp.merge_pages(vm0, 0, vm1, 0)
        hyp.guest_write(vm1, 0, 0, np.array([1], dtype=np.uint8))
        # vm0 is now the sole owner but the frame stays protected until
        # it writes; its write must not allocate another frame.
        before = hyp.footprint_pages()
        hyp.guest_write(vm0, 0, 0, np.array([2], dtype=np.uint8))
        assert hyp.footprint_pages() == before
        hyp.verify_consistency()


class TestFootprintReporting:
    def test_footprint_counts(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        assert hyp.guest_pages() == 6
        assert hyp.footprint_pages() == 6
        hyp.merge_pages(vm0, 0, vm1, 0)
        hyp.merge_pages(vm0, 2, vm1, 2)
        assert hyp.guest_pages() == 6
        assert hyp.footprint_pages() == 4

    def test_footprint_by_category(self, two_vm_setup):
        hyp, (vm0, vm1) = two_vm_setup
        hyp.merge_pages(vm0, 0, vm1, 0)
        by_cat = hyp.footprint_by_category()
        assert by_cat["mergeable"] == 1
        assert by_cat["unmergeable"] == 2
        assert by_cat["zero"] == 2

    def test_guest_pages_by_category(self, two_vm_setup):
        hyp, _vms = two_vm_setup
        by_cat = hyp.guest_pages_by_category()
        assert by_cat == {"mergeable": 2, "unmergeable": 2, "zero": 2}

    def test_consistency_check_detects_corruption(self, two_vm_setup):
        hyp, (vm0, _vm1) = two_vm_setup
        hyp.memory.frame(vm0.translate(0)).refcount += 1  # corrupt
        with pytest.raises(AssertionError):
            hyp.verify_consistency()
