"""Fleet layer: spec/seed derivation, reduce semantics, differential.

The differential test is the load-bearing one: a fleet of N *identical*
single-host shards (explicit pinned seeds) must reduce to exactly N
times the metrics one ``repro run`` of that host produces — integer
counters exactly, floating aggregates to fp-roundoff.
"""

import json
import math

import pytest

from repro.fleet import (
    FleetSpec,
    HostSpec,
    ShardResult,
    reduce_shards,
    run_fleet,
    run_shard,
    shard_seed,
    shard_tasks,
)
from repro.fleet.reduce import FleetResult
from repro.sim.runner import run_latency_experiment
from repro.sim.system import SimulationScale

TINY = dict(n_vms=2, pages_per_vm=40, duration_s=0.04, warmup_s=0.04)


# Spec and seed derivation ----------------------------------------------------


def test_shard_seed_is_stable_and_distinct():
    # Pinned value: the derivation is sha256-based and must never move
    # between Python versions or processes (a salted hash() would).
    assert shard_seed(2017, 0) == shard_seed(2017, 0)
    seeds = {shard_seed(2017, host) for host in range(64)}
    assert len(seeds) == 64
    assert all(0 < s < 2 ** 63 for s in seeds)
    # Different fleet seeds decorrelate every host.
    assert shard_seed(2017, 3) != shard_seed(2018, 3)


def test_host_seed_override_pins_the_shard():
    derived = HostSpec(host_id=5).resolve_seed(2017)
    assert derived == shard_seed(2017, 5)
    assert HostSpec(host_id=5, seed=123).resolve_seed(2017) == 123


def test_spec_validation_rejects_bad_fleets():
    with pytest.raises(ValueError, match="no hosts"):
        FleetSpec(hosts=()).validate()
    dup = FleetSpec(hosts=(HostSpec(host_id=1), HostSpec(host_id=1)))
    with pytest.raises(ValueError, match="duplicate host_ids"):
        dup.validate()
    with pytest.raises(ValueError, match="backend"):
        FleetSpec.uniform(2, backend="nope")
    with pytest.raises(ValueError, match="unknown app"):
        FleetSpec.uniform(2, app="nope")


def test_heterogeneous_builder_cycles_backends():
    spec = FleetSpec.heterogeneous(5, ("ksm", "pageforge", "esx"))
    assert [h.backend for h in spec.hosts] == [
        "ksm", "pageforge", "esx", "ksm", "pageforge",
    ]
    with pytest.raises(ValueError, match="unknown merge backend"):
        FleetSpec.heterogeneous(2, ("ksm", "nope"))


def test_shard_tasks_resolve_seeds_before_dispatch():
    spec = FleetSpec.uniform(3, seed=42, **TINY)
    tasks = shard_tasks(spec)
    assert [t.host_id for t in tasks] == [0, 1, 2]
    assert [t.seed for t in tasks] == [shard_seed(42, h) for h in range(3)]


# Reduce semantics on synthetic shard results ---------------------------------


def _synthetic_result(host_id, backend="ksm", queries=10, mean=0.01,
                      p95=0.02, peak=2.0, guest=100, footprint=70,
                      digests=None):
    return ShardResult(
        host_id=host_id, backend=backend, app="moses", seed=host_id,
        summary={
            "queries": queries, "mean_sojourn_s": mean,
            "p95_sojourn_s": p95, "kernel_share_avg": 0.1,
            "kernel_share_max": 0.2, "l3_miss_rate": 0.3,
            "bandwidth_peak_gbps": peak,
        },
        metrics={"m/count": 5, "m/name": "str", "m/flag": True},
        digest_counts=digests if digests is not None else {"a": 1},
        guest_pages=guest, footprint_pages=footprint,
        merges=3, cow_breaks=1,
    )


def test_reduce_sums_counters_and_weights_latency():
    spec = FleetSpec(hosts=(HostSpec(host_id=0), HostSpec(host_id=1)))
    a = _synthetic_result(0, queries=10, mean=0.01, p95=0.02, peak=2.0)
    b = _synthetic_result(1, queries=30, mean=0.03, p95=0.05, peak=1.0)
    out = reduce_shards(spec, [b, a])  # arrival order must not matter
    assert out.queries == 40
    assert out.guest_pages == 200 and out.footprint_pages == 140
    assert out.merges == 6 and out.cow_breaks == 2
    assert math.isclose(out.mean_sojourn_s, (10 * 0.01 + 30 * 0.03) / 40)
    assert math.isclose(out.p95_sojourn_s_wmean, (10 * 0.02 + 30 * 0.05) / 40)
    assert out.p95_sojourn_s_max == 0.05
    assert out.bandwidth_sum_gbps == 3.0 and out.bandwidth_max_gbps == 2.0
    # Snapshot metrics: numerics sum, strings and flags are dropped.
    assert out.metrics == {"m/count": 10}
    assert [row["host_id"] for row in out.per_host] == [0, 1]


def test_reduce_rejects_missing_duplicate_and_extra_hosts():
    spec = FleetSpec(hosts=(HostSpec(host_id=0), HostSpec(host_id=1)))
    a, b = _synthetic_result(0), _synthetic_result(1)
    with pytest.raises(ValueError, match="duplicate shard result"):
        reduce_shards(spec, [a, a, b])
    with pytest.raises(ValueError, match="missing hosts \\[1\\]"):
        reduce_shards(spec, [a])
    with pytest.raises(ValueError, match="unexpected hosts \\[2\\]"):
        reduce_shards(spec, [a, b, _synthetic_result(2)])


def test_cross_host_dedup_accounting():
    # Host 0 holds {x, y}, host 1 holds {x, z, z}: per-host distinct sums
    # to 4, the fleet has 3 distinct contents, so exactly one frame is a
    # cross-host duplicate; host 1's extra z is intra-host residue.
    spec = FleetSpec(hosts=(HostSpec(host_id=0), HostSpec(host_id=1)))
    a = _synthetic_result(0, footprint=2, digests={"x": 1, "y": 1})
    b = _synthetic_result(1, footprint=3, digests={"x": 1, "z": 2})
    out = reduce_shards(spec, [a, b])
    assert out.distinct_contents == 3
    assert out.cross_host_duplicate_frames == 1
    assert out.intra_host_duplicate_frames == 1


def test_by_backend_buckets_heterogeneous_fleets():
    spec = FleetSpec(hosts=(
        HostSpec(host_id=0, backend="ksm"),
        HostSpec(host_id=1, backend="esx"),
        HostSpec(host_id=2, backend="ksm"),
    ))
    out = reduce_shards(spec, [
        _synthetic_result(0, backend="ksm"),
        _synthetic_result(1, backend="esx"),
        _synthetic_result(2, backend="ksm"),
    ])
    assert out.by_backend["ksm"]["hosts"] == 2
    assert out.by_backend["esx"]["hosts"] == 1
    assert math.isclose(out.by_backend["ksm"]["savings_frac"], 0.3)


def test_fingerprint_covers_every_field():
    spec = FleetSpec(hosts=(HostSpec(host_id=0),))
    out = reduce_shards(spec, [_synthetic_result(0)])
    fp = out.fingerprint
    out.merges += 1
    assert out.fingerprint != fp
    # And the dict round-trips through canonical JSON.
    json.dumps(out.to_dict(), sort_keys=True)


def test_fleet_result_fractions_guard_zero_division():
    empty = FleetResult(seed=0, n_hosts=0, n_vms=0)
    assert empty.savings_frac == 0.0
    assert empty.cross_host_dedup_frac == 0.0
    assert empty.potential_savings_frac == 0.0


# Differential: N identical shards == N x one `repro run` --------------------


def test_identical_shards_reduce_to_exact_multiples():
    pinned = 977
    scale = SimulationScale(
        pages_per_vm=TINY["pages_per_vm"], n_vms=TINY["n_vms"],
        duration_s=TINY["duration_s"], warmup_s=TINY["warmup_s"],
    )
    single = run_latency_experiment(
        "moses", modes=("ksm",), scale=scale, seed=pinned
    ).summaries["ksm"]

    n = 3
    spec = FleetSpec(
        seed=0,
        hosts=tuple(
            HostSpec(host_id=i, backend="ksm", app="moses",
                     n_vms=TINY["n_vms"],
                     pages_per_vm=TINY["pages_per_vm"], seed=pinned)
            for i in range(n)
        ),
        duration_s=TINY["duration_s"], warmup_s=TINY["warmup_s"],
    )
    fleet = run_fleet(spec, workers=1)

    # Integer counters: exactly N times the single run.
    assert fleet.queries == n * single.queries
    assert fleet.footprint_pages == n * single.footprint_pages
    # Weighted means of identical hosts collapse to the single value.
    assert math.isclose(fleet.mean_sojourn_s, single.mean_sojourn_s,
                        rel_tol=1e-12)
    assert math.isclose(fleet.p95_sojourn_s_wmean, single.p95_sojourn_s,
                        rel_tol=1e-12)
    assert fleet.p95_sojourn_s_max == single.p95_sojourn_s
    assert math.isclose(fleet.kernel_share_avg, single.kernel_share_avg,
                        rel_tol=1e-12)
    assert fleet.kernel_share_max == single.kernel_share_max
    assert math.isclose(fleet.bandwidth_sum_gbps,
                        n * single.bandwidth_peak_gbps, rel_tol=1e-12)
    assert fleet.bandwidth_max_gbps == single.bandwidth_peak_gbps
    # Identical hosts contribute identical digest histograms, so the
    # fleet-distinct set equals one host's and every further host's
    # distinct set is pure cross-host duplication: (n-1) * D frames.
    assert all(r["footprint_pages"] == single.footprint_pages
               for r in fleet.per_host)
    assert fleet.cross_host_duplicate_frames == (
        (n - 1) * fleet.distinct_contents
    )


def test_run_shard_matches_repro_run_summary():
    """One shard's summary dict is bit-identical to `repro run`'s."""
    from dataclasses import asdict

    pinned = 431
    scale = SimulationScale(
        pages_per_vm=TINY["pages_per_vm"], n_vms=TINY["n_vms"],
        duration_s=TINY["duration_s"], warmup_s=TINY["warmup_s"],
    )
    single = run_latency_experiment(
        "moses", modes=("ksm",), scale=scale, seed=pinned
    ).summaries["ksm"]
    spec = FleetSpec(
        seed=0,
        hosts=(HostSpec(host_id=0, backend="ksm",
                        n_vms=TINY["n_vms"],
                        pages_per_vm=TINY["pages_per_vm"], seed=pinned),),
        duration_s=TINY["duration_s"], warmup_s=TINY["warmup_s"],
    )
    (task,) = shard_tasks(spec)
    shard = run_shard(task)
    assert shard.summary == asdict(single)


# CLI + export ----------------------------------------------------------------


def test_cli_fleet_smoke(capsys, tmp_path):
    from repro.cli import main

    csv_path = tmp_path / "fleet.csv"
    json_path = tmp_path / "fleet.json"
    rc = main([
        "fleet", "--shards", "2", "--workers", "1", "--vms", "2",
        "--pages-per-vm", "40", "--duration", "0.04", "--warmup", "0.04",
        "--backend", "ksm", "--backend", "esx",
        "--csv", str(csv_path), "--json", str(json_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fingerprint" in out and "cross-host dedup" in out
    rows = json.loads(json_path.read_text())
    assert [r["row"] for r in rows] == ["host", "host", "fleet"]
    assert rows[0]["backend"] == "ksm" and rows[1]["backend"] == "esx"
    total = rows[-1]
    assert total["queries"] == rows[0]["queries"] + rows[1]["queries"]
    assert total["fingerprint"]
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("row,host_id,backend")


def test_cli_fleet_rejects_unknown_backend(capsys):
    from repro.cli import main

    rc = main(["fleet", "--shards", "2", "--backend", "nope"])
    assert rc == 2
    assert "unknown merge backend" in capsys.readouterr().err
