"""Fault-injection subsystem: guards, injector, governor, retry paths.

Fast deterministic tests for each layer of ``repro.faults`` plus the
hooks it plugs into: the engine's Scan-Table walk guards, the memory
controller's read-path hook and pending-buffer accounting, the driver's
retry/poison logic, and the degradation governor's state machine.  The
slow end-to-end campaigns live in ``benchmarks/bench_fault_resilience``.
"""

import numpy as np
import pytest

from repro.common.config import KSMConfig, ResilienceConfig
from repro.common.units import PAGE_BYTES
from repro.core.driver import PageForgeMergeDriver
from repro.core.engine import PageForgeEngine
from repro.core.scan_table import (
    INVALID_INDEX,
    ScanTableCorruption,
    miss_sentinel,
    pointer_sane,
)
from repro.ecc.hamming import encode_line
from repro.faults import (
    DegradationGovernor,
    FaultInjector,
    FaultPlan,
    run_fault_campaign,
)
from repro.mem import MemoryController
from repro.mem.controller import RequestDropped, UncorrectableLineError
from repro.mem.requests import AccessSource


def _engine_with_pages(memory, rng, n_pages):
    """An engine plus ``n_pages`` distinct filled frames."""
    engine = PageForgeEngine(MemoryController(0, memory, verify_ecc=False))
    frames = []
    for _ in range(n_pages):
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        frames.append(frame)
    return engine, frames


def _arm_pfe(engine, candidate_ppn, ptr=0):
    pfe = engine.table.pfe
    pfe.clear()
    pfe.valid = True
    pfe.ppn = candidate_ppn
    pfe.ptr = ptr
    return pfe


class TestScanTableWalkGuards:
    def test_less_more_cycle_raises_instead_of_hanging(self, memory, rng):
        """Hand-built cyclic table: entry 0 <-> entry 1 regardless of
        comparison outcome.  The pre-guard engine would spin forever."""
        engine, frames = _engine_with_pages(memory, rng, 3)
        cand, a, b = frames
        table = engine.table
        table.entries[0].valid = True
        table.entries[0].ppn = a.ppn
        table.entries[0].less = table.entries[0].more = 1
        table.entries[1].valid = True
        table.entries[1].ppn = b.ppn
        table.entries[1].less = table.entries[1].more = 0
        _arm_pfe(engine, cand.ppn)
        with pytest.raises(ScanTableCorruption, match="cycle"):
            engine.process_table()
        assert not engine.busy  # re-triggerable after the abort

    def test_self_loop_raises(self, memory, rng):
        engine, frames = _engine_with_pages(memory, rng, 2)
        cand, other = frames
        engine.table.entries[0].valid = True
        engine.table.entries[0].ppn = other.ppn
        engine.table.entries[0].less = engine.table.entries[0].more = 0
        _arm_pfe(engine, cand.ppn)
        with pytest.raises(ScanTableCorruption, match="cycle"):
            engine.process_table()

    def test_garbage_pointer_raises(self, memory, rng):
        engine, frames = _engine_with_pages(memory, rng, 2)
        cand, other = frames
        engine.table.entries[0].valid = True
        engine.table.entries[0].ppn = other.ppn
        engine.table.entries[0].less = engine.table.entries[0].more = 999
        _arm_pfe(engine, cand.ppn)
        with pytest.raises(ScanTableCorruption, match="undecodable"):
            engine.process_table()

    def test_v_bit_drop_under_walk_raises(self, memory, rng):
        engine, frames = _engine_with_pages(memory, rng, 2)
        cand, other = frames
        engine.table.entries[0].valid = True
        engine.table.entries[0].ppn = other.ppn

        def drop_v(table, ptr):
            table.entries[ptr].valid = False

        engine.walk_fault_hook = drop_v
        _arm_pfe(engine, cand.ppn)
        with pytest.raises(ScanTableCorruption, match="invalidated"):
            engine.process_table()

    def test_miss_sentinel_exit_is_not_corruption(self, memory, rng):
        engine, frames = _engine_with_pages(memory, rng, 2)
        cand, other = frames
        entry = engine.table.entries[0]
        entry.valid = True
        entry.ppn = other.ppn
        entry.less = miss_sentinel(0, "left")
        entry.more = miss_sentinel(0, "right")
        pfe = _arm_pfe(engine, cand.ppn)
        engine.process_table()
        assert pfe.scanned and not pfe.duplicate

    def test_recovers_after_corruption(self, memory, rng):
        """A corrupted batch aborts; a repaired refill then succeeds."""
        engine, frames = _engine_with_pages(memory, rng, 2)
        cand, other = frames
        entry = engine.table.entries[0]
        entry.valid = True
        entry.ppn = other.ppn
        entry.less = entry.more = 999
        _arm_pfe(engine, cand.ppn)
        with pytest.raises(ScanTableCorruption):
            engine.process_table()
        entry.less = entry.more = INVALID_INDEX
        pfe = _arm_pfe(engine, cand.ppn)
        engine.process_table()
        assert pfe.scanned

    def test_pointer_sane_classification(self):
        n = 31
        assert pointer_sane(INVALID_INDEX, n)
        assert pointer_sane(0, n)
        assert pointer_sane(n - 1, n)
        assert pointer_sane(miss_sentinel(5, "left"), n)
        assert pointer_sane(miss_sentinel(n - 1, "right"), n)
        assert not pointer_sane(n, n)
        assert not pointer_sane(-5, n)
        assert not pointer_sane(miss_sentinel(n, "left"), n)
        assert not pointer_sane(999, n)


class TestControllerFaultPath:
    def test_expire_pending_counts_retired_reads(self, memory, rng):
        mc = MemoryController(0, memory, verify_ecc=False)
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        mc.read_line(frame.ppn, 0, AccessSource.PAGEFORGE, 0.0)
        mc.read_line(frame.ppn, 1, AccessSource.PAGEFORGE, 0.0)
        assert mc.pending_reads == 2
        assert mc.expire_pending(0.0) == 0  # completions are in the future
        assert mc.stats.expired_reads == 0
        assert mc.expire_pending(1.0) == 2
        assert mc.stats.expired_reads == 2
        assert mc.pending_reads == 0

    def test_flush_pending_force_retires(self, memory, rng):
        mc = MemoryController(0, memory, verify_ecc=False)
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        mc.read_line(frame.ppn, 0, AccessSource.PAGEFORGE, 0.0)
        assert mc.flush_pending() == 1
        assert mc.stats.expired_reads == 1

    def test_single_bit_fault_corrected_and_frame_intact(self, memory, rng):
        mc = MemoryController(0, memory, verify_ecc=True)
        frame = memory.allocate()
        original = rng.bytes_array(PAGE_BYTES)
        frame.fill(original)
        injector = FaultInjector(FaultPlan(seed=3, single_bit_rate=0.99))
        injector.attach(controller=mc)
        _req, data, _code = mc.read_line(
            frame.ppn, 0, AccessSource.PAGEFORGE, 0.0
        )
        assert injector.stats.single_bit_flips == 1
        # SECDED corrected the flip: the caller sees the true bytes.
        assert np.array_equal(data, original[:64])
        assert mc.ecc.stats.words_corrected == 1
        # And the fault never touched the stored frame.
        assert np.array_equal(frame.data, original)

    def test_double_bit_fault_raises_uncorrectable(self, memory, rng):
        mc = MemoryController(0, memory, verify_ecc=True)
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        injector = FaultInjector(FaultPlan(seed=3, double_bit_rate=0.99))
        injector.attach(controller=mc)
        with pytest.raises(UncorrectableLineError) as excinfo:
            mc.read_line(frame.ppn, 5, AccessSource.PAGEFORGE, 0.0)
        assert excinfo.value.ppn == frame.ppn
        assert excinfo.value.line_index == 5
        assert np.array_equal(frame.read_line(5), frame.data[5 * 64:6 * 64])

    def test_dropped_request_raises(self, memory, rng):
        mc = MemoryController(0, memory, verify_ecc=True)
        frame = memory.allocate()
        frame.fill(rng.bytes_array(PAGE_BYTES))
        injector = FaultInjector(FaultPlan(seed=3, drop_rate=0.99))
        injector.attach(controller=mc)
        with pytest.raises(RequestDropped):
            mc.read_line(frame.ppn, 0, AccessSource.PAGEFORGE, 0.0)
        assert injector.stats.requests_dropped == 1


class TestFaultInjector:
    def test_silent_corruption_passes_secded(self, rng):
        injector = FaultInjector(FaultPlan(seed=7, silent_rate=0.99))
        line = rng.bytes_array(64)
        original = line.copy()
        code = encode_line(line)
        data, new_code, extra = injector.line_hook(0, 0, line, code)
        assert injector.stats.silent_corruptions == 1
        assert extra == 0
        assert not np.array_equal(data, original)  # damaged ...
        assert np.array_equal(encode_line(data), new_code)  # ... invisibly
        assert np.array_equal(line, original)  # hook works on a copy

    def test_latency_spike_delays_without_corrupting(self, rng):
        plan = FaultPlan(seed=7, latency_spike_rate=0.99,
                         latency_spike_cycles=1234)
        injector = FaultInjector(plan)
        line = rng.bytes_array(64)
        code = encode_line(line)
        data, new_code, extra = injector.line_hook(0, 0, line, code)
        assert extra == 1234
        assert np.array_equal(data, line)
        assert np.array_equal(new_code, code)

    def test_same_seed_replays_identically(self, rng):
        plan = FaultPlan.uniform(0.3, seed=11)
        lines = [rng.bytes_array(64) for _ in range(40)]
        codes = [encode_line(line) for line in lines]

        def run():
            injector = FaultInjector(plan)
            out = []
            for i, (line, code) in enumerate(zip(lines, codes)):
                try:
                    data, c, extra = injector.line_hook(0, i, line, code)
                    out.append((data.tobytes(), bytes(np.asarray(c)), extra))
                except RequestDropped:
                    out.append("dropped")
            return out, injector.stats.snapshot()

        first, second = run(), run()
        assert first == second

    def test_different_seeds_diverge(self, rng):
        lines = [rng.bytes_array(64) for _ in range(60)]
        codes = [encode_line(line) for line in lines]

        def trace(seed):
            injector = FaultInjector(FaultPlan.uniform(0.3, seed=seed))
            for i, (line, code) in enumerate(zip(lines, codes)):
                try:
                    injector.line_hook(0, i, line, code)
                except RequestDropped:
                    pass
            return injector.stats.snapshot()

        assert trace(1) != trace(2)


class TestDegradationGovernor:
    def _config(self, **overrides):
        base = dict(fallback_fault_rate=2e-4, recovery_fault_rate=5e-5,
                    ewma_alpha=0.9, probe_interval=4, recovery_probes=2)
        base.update(overrides)
        return ResilienceConfig(**base)

    def test_falls_back_when_rate_crosses_threshold(self):
        gov = DegradationGovernor(self._config())
        assert gov.observe(events=0, lines=10_000) == "hardware"
        assert gov.observe(events=50, lines=20_000) == "software"
        assert gov.transitions == [(2, "software")]

    def test_probe_cadence_while_degraded(self):
        gov = DegradationGovernor(self._config())
        gov.observe(events=100, lines=10_000)  # fall back at interval 1
        assert gov.backend == "software"
        decisions = []
        for _ in range(8):
            decisions.append(gov.plan_interval())
            gov.observe(events=100, lines=10_000)  # software: no deltas
        # _interval_index was 1 after the fallback; every 4th is a probe.
        assert decisions == ["software", "software", "software", "hardware",
                             "software", "software", "software", "hardware"]

    def test_recovers_after_consecutive_healthy_probes(self):
        gov = DegradationGovernor(self._config())
        gov.observe(events=100, lines=10_000)  # ewma ~ 9e-3 -> software
        lines = 10_000
        # Healthy probes: hardware lines flow, zero new events; alpha=0.9
        # collapses the EWMA fast.
        probes = 0
        while gov.backend == "software" and probes < 20:
            lines += 10_000
            gov.observe(events=100, lines=lines)
            probes += 1
        assert gov.backend == "hardware"
        assert gov.transitions[-1][1] == "hardware"
        assert gov.intervals_degraded == probes

    def test_software_intervals_leave_ewma_untouched(self):
        gov = DegradationGovernor(self._config())
        gov.observe(events=100, lines=10_000)
        ewma = gov.ewma
        gov.observe(events=100, lines=10_000)  # delta_lines == 0
        assert gov.ewma == ewma

    def test_hysteresis_gap_enforced(self):
        with pytest.raises(ValueError):
            ResilienceConfig(fallback_fault_rate=1e-4,
                             recovery_fault_rate=1e-4)


def _shared_world(hypervisor, rng, n_vms=3, shared=4, unique=2):
    contents = [rng.bytes_array(PAGE_BYTES) for _ in range(shared)]
    for i in range(n_vms):
        vm = hypervisor.create_vm(f"vm{i}")
        gpn = 0
        for content in contents:
            hypervisor.populate_page(vm, gpn, content, mergeable=True)
            gpn += 1
        for _ in range(unique):
            hypervisor.populate_page(vm, gpn, rng.bytes_array(PAGE_BYTES),
                                     mergeable=True)
            gpn += 1


class TestDriverRetryAndPoison:
    def test_drops_are_retried_and_merging_completes(self, hypervisor, rng):
        _shared_world(hypervisor, rng)
        controller = MemoryController(0, hypervisor.memory, verify_ecc=True)
        driver = PageForgeMergeDriver(
            hypervisor, controller, ksm_config=KSMConfig(pages_to_scan=500),
            line_sampling=1,
        )
        injector = FaultInjector(FaultPlan(seed=5, drop_rate=0.02))
        injector.attach(controller=controller, engine=driver.engine)
        before = hypervisor.footprint_pages()
        driver.run_to_steady_state(max_passes=4)
        injector.detach()
        assert injector.stats.requests_dropped > 0
        assert driver.fault_stats.batch_retries > 0
        # Bounded retries: abandoning is allowed, looping forever is not.
        assert driver.fault_stats.batches_abandoned <= \
            driver.fault_stats.batch_retries
        assert hypervisor.footprint_pages() < before  # merging still won
        hypervisor.verify_consistency()

    def test_uncorrectable_candidate_is_poisoned(self, hypervisor, rng):
        _shared_world(hypervisor, rng)
        controller = MemoryController(0, hypervisor.memory, verify_ecc=True)
        driver = PageForgeMergeDriver(
            hypervisor, controller, ksm_config=KSMConfig(pages_to_scan=500),
            line_sampling=1,
        )
        injector = FaultInjector(FaultPlan(seed=5, double_bit_rate=0.10))
        injector.attach(controller=controller, engine=driver.engine)
        driver.scan_pages(hypervisor.guest_pages() * 2)
        injector.detach()
        assert driver.fault_stats.uncorrectable_lines > 0
        assert driver.fault_stats.candidates_poisoned > 0
        assert driver.stats.candidates_poisoned > 0
        # Poisoned pages are retired from merging, never corrupted.
        poisoned = [
            m for vm in hypervisor.vms.values() for m in vm.mappings()
            if not m.mergeable and not m.cow
        ]
        assert len(poisoned) >= driver.fault_stats.candidates_poisoned
        hypervisor.verify_consistency()

    def test_backend_switch_round_trip(self, hypervisor, rng):
        _shared_world(hypervisor, rng)
        controller = MemoryController(0, hypervisor.memory, verify_ecc=False)
        driver = PageForgeMergeDriver(
            hypervisor, controller, ksm_config=KSMConfig(pages_to_scan=500),
        )
        driver.set_backend("software")
        assert driver.backend == "software"
        assert driver.daemon.search_strategy is None
        before = hypervisor.footprint_pages()
        driver.scan_pages(hypervisor.guest_pages() * 2)
        assert hypervisor.footprint_pages() < before  # software still merges
        lines_before = driver.engine.stats.lines_fetched
        driver.set_backend("hardware")
        assert driver.daemon.search_strategy is driver.strategy
        driver.scan_pages(hypervisor.guest_pages())
        assert driver.engine.stats.lines_fetched >= lines_before
        hypervisor.verify_consistency()


@pytest.mark.slow
class TestCampaignDeterminism:
    def test_tiny_campaign_clean_and_reproducible(self):
        plan = FaultPlan.uniform(2e-3, seed=9, churn=True)
        kwargs = dict(mode="pageforge", plan=plan, seed=9,
                      pages_per_vm=12, n_vms=3, intervals=2)
        first = run_fault_campaign(**kwargs)
        second = run_fault_campaign(**kwargs)
        assert first.clean
        assert first.fingerprint == second.fingerprint
        assert first.injected == second.injected

    def test_quiet_plan_injects_nothing(self):
        result = run_fault_campaign(
            mode="pageforge", plan=FaultPlan.quiet(seed=1), seed=1,
            pages_per_vm=12, n_vms=2, intervals=2,
        )
        assert result.clean
        injected = {
            k: v for k, v in result.injected.items()
            if k not in ("lines_inspected", "walk_steps_inspected")
        }
        assert all(v == 0 for v in injected.values())
        assert result.savings_frac > 0
