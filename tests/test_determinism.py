"""Determinism: identical seeds must reproduce identical experiments.

The whole reproduction is built on seeded RNG streams; these tests pin
that guarantee so refactors cannot silently introduce order-dependent or
unseeded randomness.
"""

import pytest

from repro.common.config import TAILBENCH_APPS
from repro.sim import (
    ServerSystem,
    SimulationScale,
    run_hash_key_study,
    run_memory_savings,
)

TINY = SimulationScale(pages_per_vm=100, n_vms=2, duration_s=0.08,
                       warmup_s=0.05)
APP = TAILBENCH_APPS["moses"]


class TestSeedDeterminism:
    def _run(self, mode, seed):
        system = ServerSystem(APP, mode=mode, scale=TINY, seed=seed)
        collector = system.run()
        return (
            collector.mean_sojourn_s(),
            collector.p95_sojourn_s(),
            len(collector),
            system.hypervisor.footprint_pages(),
        )

    @pytest.mark.parametrize("mode", ["baseline", "ksm", "pageforge"])
    def test_same_seed_identical(self, mode):
        assert self._run(mode, seed=5) == self._run(mode, seed=5)

    def test_different_seed_differs(self):
        assert self._run("baseline", 5) != self._run("baseline", 6)

    def test_savings_deterministic(self):
        a = run_memory_savings("moses", pages_per_vm=60, n_vms=3, seed=9)
        b = run_memory_savings("moses", pages_per_vm=60, n_vms=3, seed=9)
        assert a.pages_after == b.pages_after
        assert a.merges == b.merges
        assert a.after_by_category == b.after_by_category

    def test_hash_study_deterministic(self):
        a = run_hash_key_study("moses", pages_per_vm=50, n_vms=2,
                               n_passes=3, seed=4)
        b = run_hash_key_study("moses", pages_per_vm=50, n_vms=2,
                               n_passes=3, seed=4)
        assert (a.jhash_matches, a.ecc_matches) == \
            (b.jhash_matches, b.ecc_matches)

    def test_content_mode_independent(self):
        """Baseline and KSM runs see byte-identical VM images."""
        systems = [
            ServerSystem(APP, mode=mode, scale=TINY, seed=11)
            for mode in ("baseline", "ksm")
        ]
        vm_a = systems[0].vms[0]
        vm_b = systems[1].vms[0]
        for gpn in range(0, TINY.pages_per_vm, 17):
            a = systems[0].hypervisor.guest_read(vm_a, gpn)
            b = systems[1].hypervisor.guest_read(vm_b, gpn)
            assert a.tobytes() == b.tobytes(), gpn
