"""Tests for the PageForge area/power model (Table 5)."""

import pytest

from repro.common.config import PageForgeConfig
from repro.core.power import PageForgePowerModel, PowerReport


class TestArea:
    def test_total_matches_paper_point(self):
        model = PageForgePowerModel()
        assert model.total_area_mm2() == pytest.approx(0.029, abs=0.005)

    def test_scan_table_area(self):
        model = PageForgePowerModel()
        assert model.scan_table_area_mm2() == pytest.approx(0.010,
                                                            abs=0.003)

    def test_bigger_table_bigger_area(self):
        small = PageForgePowerModel(PageForgeConfig(scan_table_bytes=260))
        big = PageForgePowerModel(PageForgeConfig(scan_table_bytes=2048))
        assert big.scan_table_area_mm2() > small.scan_table_area_mm2()


class TestPower:
    def test_total_in_paper_band(self):
        model = PageForgePowerModel()
        total = model.total_power_w()
        assert 0.005 <= total <= 0.08  # paper: 0.037 W

    def test_power_scales_with_activity(self):
        model = PageForgePowerModel()
        idle = model.total_power_w(scan_activity=0.0, alu_activity=0.0)
        busy = model.total_power_w(scan_activity=1.0, alu_activity=1.0)
        assert busy > idle
        assert idle > 0  # leakage never disappears

    def test_power_scales_with_frequency(self):
        slow = PageForgePowerModel(frequency_hz=1e9)
        fast = PageForgePowerModel(frequency_hz=4e9)
        assert fast.total_power_w() > slow.total_power_w()


class TestReports:
    def test_report_rows(self):
        reports = PageForgePowerModel().report()
        names = [r.name for r in reports]
        assert names == ["Scan table", "ALU", "Total PageForge"]
        total = reports[-1]
        assert total.area_mm2 == pytest.approx(
            reports[0].area_mm2 + reports[1].area_mm2
        )
        assert total.power_w == pytest.approx(
            reports[0].power_w + reports[1].power_w
        )

    def test_comparison_points(self):
        inorder, server = PageForgePowerModel().comparison_points()
        assert isinstance(inorder, PowerReport)
        assert inorder.area_mm2 == pytest.approx(0.77)
        assert server.power_w == pytest.approx(164.0)

    def test_orders_of_magnitude(self):
        """The paper's punchline: negligible next to cores and chips."""
        model = PageForgePowerModel()
        total = model.report()[-1]
        inorder, server = model.comparison_points()
        assert inorder.power_w / total.power_w >= 5
        assert server.area_mm2 / total.area_mm2 >= 1000
