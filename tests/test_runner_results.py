"""Tests for the runner result dataclasses and their derived metrics."""

import pytest

from repro.sim.runner import (
    ExperimentResult,
    HashKeyStudyResult,
    LatencySummary,
    MemorySavingsResult,
)


def summary(mode, mean=1.0, p95=2.0):
    return LatencySummary(
        app_name="x", mode=mode, mean_sojourn_s=mean, p95_sojourn_s=p95,
        queries=1, kernel_share_avg=0, kernel_share_max=0,
        l3_miss_rate=0, bandwidth_peak_gbps=0, bandwidth_breakdown={},
    )


class TestMemorySavingsResult:
    def test_savings_frac(self):
        r = MemorySavingsResult("a", 200, 110, {}, {}, 90, "ksm")
        assert r.savings_frac == pytest.approx(0.45)

    def test_zero_before(self):
        r = MemorySavingsResult("a", 0, 0, {}, {}, 0, "ksm")
        assert r.savings_frac == 0.0
        assert r.normalized_after() == {}

    def test_normalized_after(self):
        r = MemorySavingsResult(
            "a", 100, 60, {}, {"unmergeable": 45, "zero": 1,
                               "mergeable": 14}, 40, "pageforge",
        )
        norm = r.normalized_after()
        assert norm["unmergeable"] == pytest.approx(0.45)
        assert norm["zero"] == pytest.approx(0.01)
        assert norm["mergeable"] == pytest.approx(0.14)


class TestHashKeyStudyResult:
    def test_fracs(self):
        r = HashKeyStudyResult("a", 200, 180, 20, 190, 10, 2, 12)
        assert r.jhash_match_frac == pytest.approx(0.9)
        assert r.ecc_match_frac == pytest.approx(0.95)
        assert r.extra_ecc_false_positive_frac == pytest.approx(0.05)

    def test_zero_comparisons(self):
        r = HashKeyStudyResult("a", 0, 0, 0, 0, 0, 0, 0)
        assert r.jhash_match_frac == 0.0
        assert r.extra_ecc_false_positive_frac == 0.0


class TestExperimentResult:
    def test_normalisation(self):
        result = ExperimentResult("x")
        result.summaries["baseline"] = summary("baseline", 2.0, 4.0)
        result.summaries["ksm"] = summary("ksm", 3.0, 10.0)
        assert result.normalized_mean("ksm") == pytest.approx(1.5)
        assert result.normalized_p95("ksm") == pytest.approx(2.5)

    def test_zero_baseline(self):
        result = ExperimentResult("x")
        result.summaries["baseline"] = summary("baseline", 0.0, 0.0)
        result.summaries["ksm"] = summary("ksm")
        assert result.normalized_mean("ksm") == 0.0
        assert result.normalized_p95("ksm") == 0.0

    def test_missing_mode_raises(self):
        result = ExperimentResult("x")
        result.summaries["baseline"] = summary("baseline")
        with pytest.raises(KeyError):
            result.normalized_mean("pageforge")
