"""Tests for the full-compare oracle and the differential harness."""

import pytest

from repro.common.rng import DeterministicRNG
from repro.common.units import PAGE_BYTES
from repro.mem import PhysicalMemory
from repro.verify.differential import run_differential, run_differential_suite
from repro.verify.oracle import (
    PageRef,
    achieved_merge_sets,
    compare_to_oracle,
    reference_partition,
)
from repro.virt import Hypervisor


def _fresh(seed=99):
    rng = DeterministicRNG(seed, "oracle-tests")
    hyp = Hypervisor(physical_memory=PhysicalMemory(32 << 20))
    return hyp, rng


class TestReferencePartition:
    def test_partitions_by_content(self, two_vm_setup):
        hypervisor, _vms = two_vm_setup
        partition = reference_partition(hypervisor)
        # Shared page x2 -> one class of 2; zero page x2 -> one class
        # of 2; two unique pages -> two singleton classes.
        assert partition.n_pages == 6
        sizes = sorted(len(c) for c in partition.classes)
        assert sizes == [1, 1, 2, 2]
        assert partition.duplicate_pairs == 2
        assert partition.distinct_contents == 4

    def test_class_index_covers_every_page(self, two_vm_setup):
        hypervisor, _vms = two_vm_setup
        partition = reference_partition(hypervisor)
        index = partition.class_index()
        assert len(index) == partition.n_pages
        for i, members in enumerate(partition.classes):
            for ref in members:
                assert index[ref] == i

    def test_mergeable_only_excludes_private_pages(self):
        hyp, rng = _fresh()
        vm = hyp.create_vm("vm")
        data = rng.bytes_array(PAGE_BYTES)
        hyp.populate_page(vm, 0, data, mergeable=True)
        hyp.populate_page(vm, 1, data, mergeable=False)
        assert reference_partition(hyp).n_pages == 1
        assert reference_partition(
            hyp, mergeable_only=False
        ).duplicate_pairs == 1

    def test_comparison_and_byte_costs_counted(self, two_vm_setup):
        hypervisor, _vms = two_vm_setup
        partition = reference_partition(hypervisor)
        assert partition.comparisons > 0
        assert partition.bytes_compared >= partition.comparisons


class TestCompareToOracle:
    def test_correct_merge_state_is_clean(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        oracle = reference_partition(hypervisor)
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        report = compare_to_oracle(hypervisor, oracle, backend="manual")
        assert report.zero_false_merges
        assert report.merged_pairs == 1
        # The zero-page pair was left unmerged -> one missed pair.
        assert report.missed_pairs == 1
        assert report.false_negative_rate == pytest.approx(0.5)

    def test_false_merge_detected_with_content_diff(self):
        """A wrong merge (different contents forced onto one frame) is
        flagged, and the diff is reconstructed from the frozen image."""
        frozen, _ = _fresh(7)
        live, _ = _fresh(7)  # identical build
        for hyp in (frozen, live):
            rng = DeterministicRNG(7, "pair")
            vm_a = hyp.create_vm("a")
            vm_b = hyp.create_vm("b")
            page_a = rng.derive("a").bytes_array(PAGE_BYTES)
            page_b = rng.derive("b").bytes_array(PAGE_BYTES)
            hyp.populate_page(vm_a, 0, page_a, mergeable=True)
            hyp.populate_page(vm_b, 0, page_b, mergeable=True)
        oracle = reference_partition(frozen)
        assert oracle.distinct_contents == 2

        vms = list(live.vms.values())
        live.merge_pages(vms[0], 0, vms[1], 0, verify=False)  # the bug
        report = compare_to_oracle(
            live, oracle, frozen_hypervisor=frozen, backend="buggy"
        )
        assert not report.zero_false_merges
        assert len(report.false_merges) == 1
        divergence = report.false_merges[0]
        assert divergence.kind == "false-merge"
        assert divergence.first_diff_offset is not None
        assert divergence.byte_a != divergence.byte_b
        assert "first diff at byte" in divergence.describe()

    def test_achieved_merge_sets_group_by_frame(self, two_vm_setup):
        hypervisor, vms = two_vm_setup
        hypervisor.merge_pages(vms[0], 0, vms[1], 0)
        by_frame = achieved_merge_sets(hypervisor)
        shared_ppn = vms[0].mapping(0).ppn
        assert sorted(
            (r.vm_id, r.gpn) for r in by_frame[shared_ppn]
        ) == [(0, 0), (1, 0)]


class TestDifferentialHarness:
    def test_single_seed_equivalence(self):
        result = run_differential(
            app="moses", seed=0, pages_per_vm=60, n_vms=2
        )
        assert result.ok
        assert set(result.reports) == {"ksm", "pageforge"}
        for report in result.reports.values():
            assert report.zero_false_merges

    def test_acceptance_five_seeded_workloads(self):
        """Acceptance criterion: >=5 seeded workloads, PageForge merge
        set equivalent to the full-compare oracle — zero false merges
        and FN rate within tolerance of the jhash baseline."""
        results = run_differential_suite(
            app="moses", seeds=(0, 1, 2, 3, 4),
            pages_per_vm=100, n_vms=3,
        )
        assert len(results) == 5
        for result in results:
            assert result.ok, [
                d.describe() for d in result.divergences()
            ]
            pf = result.reports["pageforge"]
            ksm = result.reports["ksm"]
            assert pf.zero_false_merges and ksm.zero_false_merges
            assert pf.false_negative_rate <= \
                ksm.false_negative_rate + result.fn_tolerance

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_differential(app="moses", seed=0, pages_per_vm=20,
                             n_vms=2, backends=("xen",))


def test_page_ref_is_hashable_and_ordered_data():
    assert PageRef(1, 2) == PageRef(1, 2)
    assert len({PageRef(1, 2), PageRef(1, 2), PageRef(1, 3)}) == 2
